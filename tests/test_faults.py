"""The fault matrix: every registered failpoint driven through failure,
asserting the recovery invariant each site promises.

The sites and their contracts:

==================  ====================================================
``wal.append``      a failed append leaves the log crash-consistent
                    (file truncated back to the pre-append offset; a
                    torn write is discarded on reopen)
``wal.fsync``       transient errors are retried within the budget;
                    ``ENOSPC`` fails fast into degraded read-only mode
``checkpoint.stage``    a failed staging write leaves the previous
                        checkpoint authoritative and no litter behind
``checkpoint.publish``  ditto for the final rename
``serve_blob.load``     an unreadable blob entry means "rebuild lazily",
                        never a failed recovery
``atomic.write``    the published file is the old one, untouched
``server.ingest``   an I/O failure inside the HTTP write path answers
                    503, and the server keeps serving
==================  ====================================================
"""

import errno
import os
import time

import pytest

from repro import Database, Relation, faults
from repro.server import create_app
from repro.server.sessions import RateLimitedError, TokenBucketLimiter
from repro.server.testing import TestClient
from repro.service.query_service import QueryService, ServiceDegradedError
from repro.storage import retry
from repro.storage.checkpoint import latest_checkpoint

Q = "Q(a, b) :- R(a, b)"


@pytest.fixture(autouse=True)
def _disarm_everything():
    """No fault leaks between tests, whatever a test did or raised."""
    faults.disarm_all()
    yield
    faults.disarm_all()


def make_service(tmp_path, **kwargs):
    db = Database([Relation("R", ("a", "b"), [(1, 10), (2, 20)])])
    return QueryService(db, storage=tmp_path / "store", **kwargs)


# ---------------------------------------------------------------------- #
# Framework                                                               #
# ---------------------------------------------------------------------- #


def test_registry_covers_every_instrumented_site():
    # Importing the durability stack registered its sites; the matrix
    # below must keep covering all of them.
    import repro.server.app  # noqa: F401 - registers server.ingest
    import repro.storage.serve_blob  # noqa: F401

    assert set(faults.known()) >= {
        "wal.append", "wal.fsync", "atomic.write",
        "checkpoint.stage", "checkpoint.publish",
        "serve_blob.load", "server.ingest",
    }


def test_disarmed_inject_is_a_noop():
    fired = faults.injected_total()
    faults.inject("wal.append")  # nothing armed: must not raise
    assert faults.injected_total() == fired


def test_arm_disarm_cycle_and_fire_counts():
    faults.arm("wal.append", "error(EIO)*2")
    fired_before = faults.stats()["wal.append"]["fired"]
    for _ in range(2):
        with pytest.raises(OSError):
            faults.inject("wal.append")
    faults.inject("wal.append")  # budget spent: proceeds
    assert faults.stats()["wal.append"]["fired"] == fired_before + 2
    assert faults.disarm("wal.append")
    assert not faults.disarm("wal.append")


def test_spec_grammar_parses_every_policy_kind():
    assert faults.parse_policy("error(ENOSPC)").describe() == "error(ENOSPC)always"
    assert faults.parse_policy("error(EIO)*3").describe() == "error(EIO)*3"
    assert faults.parse_policy("prob(0.25, ENOSPC)").describe() == (
        "prob(0.25, ENOSPC)"
    )
    assert faults.parse_policy("latency(0.01)").describe() == "latency(0.01)"
    assert faults.parse_policy("torn(0.25)*1").describe() == "torn(0.25)*1"
    for bad in ("nonsense", "error()", "error(NOTANERRNO)", "latency(1)*2"):
        with pytest.raises(ValueError):
            faults.parse_policy(bad)


def test_arm_from_env_grammar():
    armed = faults.arm_from_env(
        "wal.append=error(ENOSPC)*1; serve_blob.load=prob(0.5,EIO)"
    )
    assert armed == 2
    assert faults.stats()["wal.append"]["armed"] == "error(ENOSPC)*1"
    assert faults.stats()["serve_blob.load"]["armed"] == "prob(0.5, EIO)"
    with pytest.raises(ValueError):
        faults.arm_from_env("justaname")
    with pytest.raises(ValueError):
        faults.arm_from_env("wal.append=bogus(1)")


def test_failpoints_context_manager_disarms_on_error():
    with pytest.raises(RuntimeError):
        with faults.failpoints({"wal.append": "error(EIO)"}):
            assert faults.stats()["wal.append"]["armed"] is not None
            raise RuntimeError("boom")
    assert faults.stats()["wal.append"]["armed"] is None


# ---------------------------------------------------------------------- #
# Retry policy                                                            #
# ---------------------------------------------------------------------- #


def test_transient_classification():
    assert retry.is_transient(OSError(errno.EIO, "eio"))
    assert not retry.is_transient(OSError(errno.ENOSPC, "full"))
    assert not retry.is_transient(ValueError("not I/O"))


def test_call_with_retry_recovers_and_reports():
    calls, retries = [], []
    policy = retry.RetryPolicy(max_attempts=3, base_delay=0.0, max_delay=0.0)

    def flaky():
        calls.append(1)
        if len(calls) < 3:
            raise OSError(errno.EIO, "flaky")
        return "ok"

    result = retry.call_with_retry(
        flaky, policy, on_retry=lambda *a: retries.append(a), sleep=lambda s: None
    )
    assert result == "ok" and len(calls) == 3 and len(retries) == 2


def test_call_with_retry_fails_fast_on_enospc():
    calls = []

    def full():
        calls.append(1)
        raise OSError(errno.ENOSPC, "full")

    with pytest.raises(OSError) as exc_info:
        retry.call_with_retry(full, retry.DEFAULT_POLICY, sleep=lambda s: None)
    assert exc_info.value.errno == errno.ENOSPC
    assert len(calls) == 1  # not transient: no second attempt


# ---------------------------------------------------------------------- #
# WAL: retry, crash consistency, torn writes                              #
# ---------------------------------------------------------------------- #


def test_wal_append_transient_fault_is_retried(tmp_path):
    service = make_service(tmp_path)
    faults.arm("wal.fsync", "error(EIO)*1")
    assert service.insert("R", (3, 30))
    assert not service.degraded
    assert service.stats().wal_retries >= 1
    assert service.stats().faults_injected >= 1


@pytest.mark.parametrize("site", ["wal.append", "wal.fsync"])
def test_wal_failure_leaves_log_crash_consistent(tmp_path, site):
    service = make_service(tmp_path)
    service.insert("R", (3, 30))
    wal_path = service.storage.wal_path
    size_before = os.path.getsize(wal_path)
    version_before = service.database.version

    faults.arm(site, "error(ENOSPC)")  # not transient: no retry, fail fast
    with pytest.raises(ServiceDegradedError):
        service.insert("R", (4, 40))
    faults.disarm_all()

    # Crash consistency: the file was rolled back to the pre-append
    # offset and the in-memory database never observed the version bump.
    assert os.path.getsize(wal_path) == size_before
    assert service.database.version == version_before
    recovered = QueryService.recover(tmp_path / "store")
    assert recovered.database.version == version_before


def test_torn_write_is_discarded_on_reopen(tmp_path):
    service = make_service(tmp_path)
    service.insert("R", (3, 30))
    wal_path = service.storage.wal_path
    payload_before = wal_path.read_bytes()

    # No retry budget so the torn write is observable, not retried away.
    service.storage.wal.retry_policy = retry.NO_RETRY
    faults.arm("wal.append", "torn(0.5)")
    with pytest.raises(ServiceDegradedError):
        service.insert("R", (5, 50))
    faults.disarm_all()

    # The rollback truncated the torn tail; even if a crash had left it,
    # reopening discards a torn record rather than replaying garbage.
    assert wal_path.read_bytes() == payload_before
    recovered = QueryService.recover(tmp_path / "store")
    assert recovered.database.version == service.database.version
    assert recovered.count(Q) == 3


def test_torn_write_within_retry_budget_succeeds(tmp_path):
    service = make_service(tmp_path)
    faults.arm("wal.append", "torn(0.9)*1")
    assert service.insert("R", (6, 60))  # rollback + one retry, clean append
    assert not service.degraded
    recovered = QueryService.recover(tmp_path / "store")
    assert recovered.database.version == service.database.version


# ---------------------------------------------------------------------- #
# Degraded read-only mode                                                 #
# ---------------------------------------------------------------------- #


def test_degraded_mode_sheds_writes_serves_reads_and_rearms(tmp_path):
    service = make_service(tmp_path, degraded_probe_interval=0.15)
    assert service.count(Q) == 2

    faults.arm("wal.fsync", "error(ENOSPC)")
    with pytest.raises(ServiceDegradedError) as exc_info:
        service.insert("R", (3, 30))
    assert isinstance(exc_info.value.__cause__, OSError)
    assert service.degraded
    assert "ENOSPC" in service.degraded_reason

    # Shedding: a write inside the probe interval raises without even
    # touching the (still armed) failpoint.
    fired = faults.stats()["wal.fsync"]["fired"]
    with pytest.raises(ServiceDegradedError):
        service.insert("R", (4, 40))
    assert faults.stats()["wal.fsync"]["fired"] == fired

    # Reads answer wait-free throughout.
    assert service.count(Q) == 2

    # Probe against a still-dead device: stays degraded.
    time.sleep(0.2)
    with pytest.raises(ServiceDegradedError):
        service.insert("R", (4, 40))
    assert faults.stats()["wal.fsync"]["fired"] == fired + 1

    # Device recovers: the next probe write re-arms the service.
    faults.disarm_all()
    time.sleep(0.2)
    assert service.insert("R", (5, 50))
    assert not service.degraded
    stats = service.stats()
    assert stats.degraded_entries == 1
    assert stats.degraded_seconds > 0


def test_degraded_stats_count_ongoing_period(tmp_path):
    service = make_service(tmp_path, degraded_probe_interval=60.0)
    faults.arm("wal.fsync", "error(ENOSPC)")
    with pytest.raises(ServiceDegradedError):
        service.insert("R", (3, 30))
    time.sleep(0.05)
    assert service.stats().degraded_seconds >= 0.05
    assert service.degraded_since_seconds >= 0.05


# ---------------------------------------------------------------------- #
# Checkpoints                                                             #
# ---------------------------------------------------------------------- #


@pytest.mark.parametrize("site", ["checkpoint.stage", "checkpoint.publish"])
def test_checkpoint_failure_keeps_previous_checkpoint(tmp_path, site):
    service = make_service(tmp_path)
    service.insert("R", (3, 30))
    service.checkpoint()
    before = latest_checkpoint(service.storage.directory)
    assert before is not None

    service.insert("R", (4, 40))
    faults.arm(site, "error(ENOSPC)")
    with pytest.raises(OSError):
        service.checkpoint()
    faults.disarm_all()

    # Previous checkpoint authoritative, no staging litter.
    after = latest_checkpoint(service.storage.directory)
    assert after is not None and after.version == before.version
    litter = [p for p in (service.storage.directory / "checkpoints").iterdir()
              if ".tmp" in p.name]
    assert litter == []
    # And the store still checkpoints fine afterwards.
    service.checkpoint()
    assert latest_checkpoint(service.storage.directory).version \
        == service.database.version


def test_checkpoint_transient_failure_is_retried(tmp_path):
    service = make_service(tmp_path)
    service.insert("R", (3, 30))
    faults.arm("checkpoint.stage", "error(EIO)*1")
    service.checkpoint()  # transient: absorbed by the retry loop
    assert service.storage.checkpoint_retries >= 1
    assert latest_checkpoint(service.storage.directory).version \
        == service.database.version


def test_blob_load_failure_degrades_to_lazy_rebuild(tmp_path):
    pytest.importorskip("numpy")
    service = make_service(tmp_path, store="flat")
    assert service.count(Q) == 2
    service.checkpoint()  # persists the flat entry as a serve blob

    faults.arm("serve_blob.load", "error(EIO)")
    recovered = QueryService.recover(tmp_path / "store", store="flat")
    faults.disarm_all()

    # Recovery itself must succeed; the unreadable entry just was not
    # seeded and rebuilds on first use.
    assert recovered.storage.last_report.serve_entries_seeded == 0
    assert recovered.count(Q) == 2


# ---------------------------------------------------------------------- #
# Atomic CSV publication                                                  #
# ---------------------------------------------------------------------- #


def test_atomic_write_failure_leaves_original_intact(tmp_path):
    from repro.storage.atomic import write_relation_csv

    relation = Relation("R", ("a", "b"), [(1, 10)])
    path = write_relation_csv(tmp_path, relation)
    original = path.read_bytes()

    grown = Relation("R", ("a", "b"), [(1, 10), (2, 20)])
    faults.arm("atomic.write", "error(ENOSPC)")
    with pytest.raises(OSError):
        write_relation_csv(tmp_path, grown)
    faults.disarm_all()

    assert path.read_bytes() == original
    assert [p for p in tmp_path.iterdir() if p.suffix == ".tmp"] == []
    # And publication works again once the device does.
    write_relation_csv(tmp_path, grown)
    assert b"2,20" in path.read_bytes()


# ---------------------------------------------------------------------- #
# HTTP tier                                                               #
# ---------------------------------------------------------------------- #


def http_app(tmp_path, **kwargs):
    db = Database([Relation("R", ("a", "b"), [(1, 10), (2, 20)])])
    return create_app(db, storage=str(tmp_path / "store"), **kwargs)


def ingest_line(client, row, **kwargs):
    body = ('{"op": "insert", "relation": "R", "row": %s}' % row).encode()
    return client.post("/ingest", body=body, **kwargs)


def test_server_ingest_fault_answers_503(tmp_path):
    client = TestClient(http_app(tmp_path))
    faults.arm("server.ingest", "error(EIO)*1")
    response = ingest_line(client, "[3, 30]")
    assert response.status == 503
    # The failure was before validation/apply: nothing changed, and the
    # next ingest sails through.
    assert ingest_line(client, "[3, 30]").status == 200


def test_http_degraded_flow(tmp_path):
    app = http_app(tmp_path)
    app.service.degraded_probe_interval = 0.15
    client = TestClient(app)

    faults.arm("wal.fsync", "error(ENOSPC)")
    response = ingest_line(client, "[3, 30]")
    assert response.status == 503
    assert response.headers.get("retry-after") is not None
    assert response.json()["degraded"] is True

    health = client.get("/healthz").json()
    assert health["status"] == "degraded"
    assert "ENOSPC" in health["degraded_reason"]

    # Reads still answer while the write path is down.
    opened = client.post("/cursors", json={"query": Q})
    assert opened.status == 201 and opened.json()["count"] == 2

    faults.disarm_all()
    time.sleep(0.2)
    assert ingest_line(client, "[3, 30]").status == 200
    assert client.get("/healthz").json()["status"] == "ok"
    stats = client.get("/stats").json()
    assert stats["service"]["degraded_entries"] == 1
    assert stats["service"]["faults_injected"] >= 1


def test_token_bucket_limiter_unit():
    now = [0.0]
    limiter = TokenBucketLimiter(rate=2.0, burst=2, clock=lambda: now[0])
    limiter.admit("a")
    limiter.admit("a")
    with pytest.raises(RateLimitedError) as exc_info:
        limiter.admit("a")
    assert exc_info.value.retry_after == pytest.approx(0.5)
    limiter.admit("b")  # other clients unaffected
    now[0] = 0.5  # one token refilled
    limiter.admit("a")
    assert limiter.gauges()["rejections"] == 1


def test_token_bucket_table_is_lru_bounded():
    now = [0.0]
    limiter = TokenBucketLimiter(rate=1.0, burst=1, capacity=2,
                                 clock=lambda: now[0])
    limiter.admit("a")
    limiter.admit("b")
    limiter.admit("c")  # evicts a
    assert limiter.gauges()["clients"] == 2
    limiter.admit("a")  # back with a fresh bucket, not a stale empty one


def test_http_admission_control(tmp_path):
    app = http_app(tmp_path, client_rate=0.001, client_burst=2)
    client = TestClient(app)

    assert client.get("/healthz").status == 200  # exempt
    open_cursor = lambda cid: client.post(
        "/cursors", json={"query": Q}, headers={"X-Client-Id": cid}
    )
    assert open_cursor("alice").status == 201
    assert open_cursor("alice").status == 201
    limited = open_cursor("alice")
    assert limited.status == 429
    assert int(limited.headers["retry-after"]) >= 1
    assert open_cursor("bob").status == 201  # per-client, not global
    assert client.get("/healthz").status == 200  # still exempt
    assert client.get("/stats").json()["admission"]["rejections"] == 1


def test_admission_falls_back_to_peer_address(tmp_path):
    app = http_app(tmp_path, client_rate=0.001, client_burst=1)
    client = TestClient(app)
    assert client.post("/cursors", json={"query": Q}).status == 201
    # Same peer (the TestClient's fixed 127.0.0.1), no header: limited.
    assert client.post("/cursors", json={"query": Q}).status == 429


# ---------------------------------------------------------------------- #
# Graceful drain                                                          #
# ---------------------------------------------------------------------- #


def test_graceful_drain_finishes_inflight_requests(tmp_path):
    import json as jsonlib
    import threading
    import urllib.request
    from repro.server import start_background

    app = http_app(tmp_path)
    server, thread, port = start_background(app)
    try:
        faults.arm("server.ingest", "latency(0.4)")
        statuses = []

        def slow_ingest():
            request = urllib.request.Request(
                f"http://127.0.0.1:{port}/ingest",
                data=b'{"op": "insert", "relation": "R", "row": [7, 70]}',
                method="POST",
            )
            with urllib.request.urlopen(request) as response:
                statuses.append(
                    (response.status, jsonlib.loads(response.read())["version"])
                )

        worker = threading.Thread(target=slow_ingest)
        worker.start()
        deadline = time.monotonic() + 2.0
        while server.inflight == 0 and time.monotonic() < deadline:
            time.sleep(0.01)
        assert server.inflight == 1
        assert server.shutdown_gracefully(timeout=5.0)
        worker.join(timeout=5.0)
        # The in-flight write finished, was acknowledged, and is durable.
        assert statuses and statuses[0][0] == 200
        assert app.service.database.version == statuses[0][1]
    finally:
        faults.disarm_all()
        server.shutdown()
        server.server_close()
        thread.join(timeout=5.0)


def test_drain_refuses_new_requests():
    from repro.server.http import ASGIServer

    server = ASGIServer.__new__(ASGIServer)
    server._inflight = 0
    server._draining = False
    import threading as _threading
    server._drain_cv = _threading.Condition()
    assert server.track_request()
    server.untrack_request()
    assert server.drain(timeout=0.1)
    assert not server.track_request()
