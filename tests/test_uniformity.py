"""Tests for the uniformity-audit machinery, and the audits themselves
applied to every randomized algorithm in the library."""

import random

import pytest

from repro import CQIndex, Database, MCUCQIndex, Relation, UnionRandomEnumerator, parse_cq, parse_ucq
from repro.experiments.uniformity import (
    chi_square_uniform,
    first_emission_audit,
    frequency_audit,
    position_audit,
)
from repro.sampling import ExactWeightSampler, OlkenSampler


@pytest.fixture()
def small_index():
    db = Database([
        Relation("R", ("a", "b"), [(i, i % 2) for i in range(6)]),
        Relation("S", ("b", "c"), [(0, "x"), (1, "y"), (1, "z")]),
    ])
    return CQIndex(parse_cq("Q(a, b, c) :- R(a, b), S(b, c)"), db)


class TestChiSquare:
    def test_uniform_counts_pass(self):
        result = chi_square_uniform([100, 101, 99, 100])
        assert result.statistic < 1
        assert result.consistent_with_uniform()

    def test_skewed_counts_fail(self):
        result = chi_square_uniform([400, 0, 0, 0])
        assert not result.consistent_with_uniform()
        assert result.p_value < 1e-10

    def test_degrees_of_freedom(self):
        assert chi_square_uniform([1, 1, 1]).degrees_of_freedom == 2

    def test_rejects_degenerate_input(self):
        with pytest.raises(ValueError):
            chi_square_uniform([5])
        with pytest.raises(ValueError):
            chi_square_uniform([0, 0])


class TestAudits:
    def test_renum_cq_first_emission(self, small_index):
        universe = list(small_index)
        rng = random.Random(7)
        result = first_emission_audit(
            lambda: small_index.random_order(rng), universe, trials=4000
        )
        assert result.consistent_with_uniform()

    def test_renum_cq_positions(self, small_index):
        universe = list(small_index)
        rng = random.Random(8)
        results = position_audit(
            lambda: small_index.random_order(rng), universe, trials=3000
        )
        assert all(r.consistent_with_uniform(significance=1e-4) for r in results)

    def test_biased_enumeration_detected(self, small_index):
        universe = list(small_index)
        # Index order is NOT a uniform permutation — the audit must say so.
        result = first_emission_audit(lambda: iter(small_index), universe, trials=500)
        assert not result.consistent_with_uniform()

    def test_sampler_frequency(self, small_index):
        universe = list(small_index)
        sampler = ExactWeightSampler(small_index.query, _db_of(small_index), rng=random.Random(3))
        result = frequency_audit(sampler.sample, universe, trials=6000)
        assert result.consistent_with_uniform()

    def test_frequency_audit_rejects_non_answers(self, small_index):
        universe = list(small_index)[:2]  # claim a smaller universe
        sampler = ExactWeightSampler(small_index.query, _db_of(small_index), rng=random.Random(3))
        with pytest.raises(ValueError):
            frequency_audit(sampler.sample, universe, trials=500)

    def test_union_enumerator_first_emission(self):
        db = Database([
            Relation("R1", ("a", "b"), [(i, 0) for i in range(5)]),
            Relation("R2", ("a", "b"), [(i, 0) for i in range(3, 8)]),
            Relation("S", ("b", "c"), [(0, "x")]),
        ])
        ucq = parse_ucq(
            "Q(a, b, c) :- R1(a, b), S(b, c) ; Q(a, b, c) :- R2(a, b), S(b, c)"
        )
        indexes = [CQIndex(q, db) for q in ucq.queries]
        universe = sorted({t for ix in indexes for t in ix})
        rng = random.Random(5)

        def run():
            return UnionRandomEnumerator.for_indexes(
                [CQIndex(q, db) for q in ucq.queries], rng=rng
            )

        result = first_emission_audit(run, universe, trials=4000)
        assert result.consistent_with_uniform()

    def test_mcucq_first_emission(self):
        db = Database([
            Relation("R1", ("a", "b"), [(i, 0) for i in range(5)]),
            Relation("R2", ("a", "b"), [(i, 0) for i in range(3, 8)]),
            Relation("S", ("b", "c"), [(0, "x")]),
        ])
        ucq = parse_ucq(
            "Q(a, b, c) :- R1(a, b), S(b, c) ; Q(a, b, c) :- R2(a, b), S(b, c)"
        )
        index = MCUCQIndex(ucq, db)
        universe = sorted(index)
        rng = random.Random(6)
        result = first_emission_audit(
            lambda: index.random_order(rng), universe, trials=4000
        )
        assert result.consistent_with_uniform()


def _db_of(index):
    """Rebuild a database holding the index's base relations (test helper)."""
    # The fixture's database is tiny; rebuilding is cheaper than threading
    # the object through — reconstruct from the reduced join's node names.
    db = Database([
        Relation("R", ("a", "b"), [(i, i % 2) for i in range(6)]),
        Relation("S", ("b", "c"), [(0, "x"), (1, "y"), (1, "z")]),
    ])
    return db
