"""Unit tests for relations and their operators."""

import pytest

from repro.database import Relation, RelationError
from repro.database.relation import row_sort_key, value_sort_key


class TestConstruction:
    def test_set_semantics(self):
        r = Relation("R", ("a", "b"), [(1, 2), (1, 2), (3, 4)])
        assert len(r) == 2
        assert r.rows == [(1, 2), (3, 4)]

    def test_arity_mismatch_rejected(self):
        with pytest.raises(RelationError):
            Relation("R", ("a", "b"), [(1,)])

    def test_duplicate_columns_rejected(self):
        with pytest.raises(RelationError):
            Relation("R", ("a", "a"), [])

    def test_nullary_relation(self):
        r = Relation("R", (), [(), ()])
        assert len(r) == 1
        assert r.rows == [()]


class TestOperators:
    def test_select(self):
        r = Relation("R", ("a", "b"), [(1, 2), (3, 4)])
        assert r.select(lambda t: t[0] > 1).rows == [(3, 4)]

    def test_select_by_column(self):
        r = Relation("R", ("a", "b"), [(1, 2), (3, 4), (3, 5)])
        assert r.select_by_column("a", 3).rows == [(3, 4), (3, 5)]

    def test_project_dedupes(self):
        r = Relation("R", ("a", "b"), [(1, 2), (1, 3)])
        assert r.project(("a",)).rows == [(1,)]

    def test_project_reorders(self):
        r = Relation("R", ("a", "b"), [(1, 2)])
        assert r.project(("b", "a")).rows == [(2, 1)]

    def test_project_unknown_column(self):
        with pytest.raises(RelationError):
            Relation("R", ("a",), []).project(("zzz",))

    def test_rename(self):
        r = Relation("R", ("a", "b"), [(1, 2)])
        s = r.rename(name="S", columns=("x", "y"))
        assert s.name == "S" and s.columns == ("x", "y") and s.rows == [(1, 2)]
        with pytest.raises(RelationError):
            r.rename(columns=("only",))

    def test_intersect(self):
        r = Relation("R", ("a",), [(1,), (2,)])
        s = Relation("S", ("a",), [(2,), (3,)])
        assert r.intersect(s).rows == [(2,)]
        with pytest.raises(RelationError):
            r.intersect(Relation("T", ("b",), []))

    def test_sorted_rows(self):
        r = Relation("R", ("a",), [(3,), (1,), (2,)])
        assert r.sorted_rows().rows == [(1,), (2,), (3,)]


class TestSortKeys:
    def test_mixed_types_total_order(self):
        values = ["b", 2, "a", 1, 2.5]
        ordered = sorted(values, key=value_sort_key)
        assert ordered == [1, 2, 2.5, "a", "b"]

    def test_row_key(self):
        rows = [(1, "b"), (1, "a"), (0, "z")]
        assert sorted(rows, key=row_sort_key) == [(0, "z"), (1, "a"), (1, "b")]

    def test_bool_sorts_with_ints(self):
        assert sorted([True, 0, 2], key=value_sort_key) == [0, True, 2]
