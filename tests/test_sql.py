"""Tests for the SQL front end, including the paper's Appendix B.1 texts."""

import pytest

from repro import CQIndex, evaluate_cq, is_free_connex
from repro.query.sql import SQLParseError, parse_sql_cq
from repro.tpch.queries import make_q0, make_q3, make_q7
from repro.tpch.schema import TPCH_TABLES

SCHEMA = {
    "R": ("a", "b"),
    "S": ("b2", "c"),
}


class TestBasics:
    def test_simple_join(self):
        q = parse_sql_cq("SELECT a, c FROM R, S WHERE b = b2", SCHEMA)
        assert [v.name for v in q.head] == ["a", "c"]
        assert len(q.body) == 2
        # The join condition merged b and b2 into one variable.
        assert q.body[0].terms[1] == q.body[1].terms[0]

    def test_distinct_keyword(self):
        q = parse_sql_cq("SELECT DISTINCT a FROM R", SCHEMA)
        assert [v.name for v in q.head] == ["a"]

    def test_constant_condition(self):
        q = parse_sql_cq("SELECT a FROM R WHERE b = 7", SCHEMA)
        from repro.query.atoms import Constant

        assert q.body[0].terms[1] == Constant(7)

    def test_string_constant(self):
        q = parse_sql_cq("SELECT a FROM R WHERE b = 'x'", SCHEMA)
        from repro.query.atoms import Constant

        assert q.body[0].terms[1] == Constant("x")

    def test_aliases_and_self_join(self):
        q = parse_sql_cq(
            "SELECT r1.a, r2.a FROM R r1, R r2 WHERE r1.b = r2.b",
            SCHEMA,
        )
        assert not q.is_self_join_free()
        assert q.body[0].terms[1] == q.body[1].terms[1]
        assert len(q.head) == 2

    def test_constant_through_equality_chain(self):
        q = parse_sql_cq("SELECT a FROM R, S WHERE b = b2 AND b2 = 3", SCHEMA)
        from repro.query.atoms import Constant

        assert q.body[0].terms[1] == Constant(3)
        assert q.body[1].terms[0] == Constant(3)

    def test_trailing_semicolon_ok(self):
        parse_sql_cq("SELECT a FROM R;", SCHEMA)


class TestErrors:
    @pytest.mark.parametrize(
        "text,fragment",
        [
            ("SELECT a FROM NoSuch", "unknown table"),
            ("SELECT zz FROM R", "unknown column"),
            ("SELECT a FROM R, S WHERE c = a AND b = c2", "unknown column"),
            ("SELECT b FROM R r1, R r2", "ambiguous"),
            ("SELECT a FROM R WHERE b = 1 AND b = 2", "contradictory"),
            ("SELECT b FROM R WHERE b = 1", "constant"),
            ("SELECT a FROM R R2, S R2", "duplicate alias"),
            ("FROM R SELECT a", "expected SELECT"),
        ],
    )
    def test_rejections(self, text, fragment):
        with pytest.raises(SQLParseError) as excinfo:
            parse_sql_cq(text, SCHEMA)
        assert fragment.lower() in str(excinfo.value).lower()


class TestPaperQueries:
    """The Appendix B.1 SQL texts compile to queries equivalent to the
    hand-written CQ objects (same answers on real data)."""

    Q0_SQL = """
        SELECT DISTINCT r_regionkey, n_nationkey, s_suppkey, ps_partkey
        FROM region, nation, supplier, partsupp
        WHERE r_regionkey = n_regionkey AND
              n_nationkey = s_nationkey AND
              s_suppkey = ps_suppkey
    """

    Q3_SQL = """
        SELECT DISTINCT o_orderkey, c_custkey, l_partkey,
                        l_suppkey, l_linenumber
        FROM customer, orders, lineitem
        WHERE c_custkey = o_custkey AND o_orderkey = l_orderkey
    """

    Q7_SQL = """
        SELECT DISTINCT o_orderkey, c_custkey, n1.n_nationkey, s_suppkey,
                        l_partkey, l_linenumber, n2.n_nationkey
        FROM supplier, lineitem, orders, customer, nation n1, nation n2
        WHERE s_suppkey = l_suppkey AND
              o_orderkey = l_orderkey AND
              c_custkey = o_custkey AND
              s_nationkey = n1.n_nationkey AND
              c_nationkey = n2.n_nationkey
    """

    @pytest.mark.parametrize(
        "sql,make",
        [(Q0_SQL, make_q0), (Q3_SQL, make_q3), (Q7_SQL, make_q7)],
        ids=["Q0", "Q3", "Q7"],
    )
    def test_equivalent_to_handwritten(self, sql, make, tiny_tpch):
        compiled = parse_sql_cq(sql, TPCH_TABLES, name="fromsql")
        assert is_free_connex(compiled)
        assert evaluate_cq(compiled, tiny_tpch) == evaluate_cq(make(), tiny_tpch)

    def test_compiled_query_indexable(self, tiny_tpch):
        compiled = parse_sql_cq(self.Q3_SQL, TPCH_TABLES)
        index = CQIndex(compiled, tiny_tpch)
        assert index.count == len(tiny_tpch.relation("lineitem"))
