"""Unit tests for hypergraphs, GYO reduction, and join trees."""

import pytest

from repro.query import Hypergraph, gyo_reduction, is_acyclic, join_tree, parse_cq
from repro.query.atoms import Variable


def _v(*names):
    return [Variable(n) for n in names]


class TestHypergraph:
    def test_of_query(self):
        q = parse_cq("Q(x) :- R(x, y), S(y, z)")
        h = Hypergraph.of_query(q)
        assert h.edges == [frozenset(_v("x", "y")), frozenset(_v("y", "z"))]

    def test_of_query_with_head_appends_free_edge(self):
        q = parse_cq("Q(x, z) :- R(x, y), S(y, z)")
        h = Hypergraph.of_query_with_head(q)
        assert h.edges[-1] == frozenset(_v("x", "z"))

    def test_restricted_to(self):
        h = Hypergraph([_v("x", "y"), _v("y", "z")])
        r = h.restricted_to(_v("x", "z"))
        assert r.edges == [frozenset(_v("x")), frozenset(_v("z"))]

    def test_vertices(self):
        h = Hypergraph([_v("x", "y"), _v("y", "z")])
        assert h.vertices == frozenset(_v("x", "y", "z"))


class TestGYO:
    def test_path_is_acyclic(self):
        assert is_acyclic(Hypergraph([_v("a", "b"), _v("b", "c"), _v("c", "d")]))

    def test_triangle_is_cyclic(self):
        assert not is_acyclic(Hypergraph([_v("x", "y"), _v("y", "z"), _v("x", "z")]))

    def test_triangle_with_covering_edge_is_acyclic(self):
        # Adding the full edge {x,y,z} absorbs the triangle's three edges.
        assert is_acyclic(
            Hypergraph([_v("x", "y"), _v("y", "z"), _v("x", "z"), _v("x", "y", "z")])
        )

    def test_star_is_acyclic(self):
        assert is_acyclic(Hypergraph([_v("h", "a"), _v("h", "b"), _v("h", "c")]))

    def test_cycle_of_length_four_is_cyclic(self):
        assert not is_acyclic(
            Hypergraph([_v("a", "b"), _v("b", "c"), _v("c", "d"), _v("d", "a")])
        )

    def test_duplicate_edges_are_acyclic(self):
        ok, tree = gyo_reduction(Hypergraph([_v("x", "y"), _v("x", "y")]))
        assert ok
        assert len(tree.all_nodes()) == 2

    def test_empty_hypergraph(self):
        ok, tree = gyo_reduction(Hypergraph([]))
        assert ok
        assert tree.roots == []

    def test_disconnected_components_give_forest(self):
        ok, tree = gyo_reduction(Hypergraph([_v("a", "b"), _v("c", "d")]))
        assert ok
        assert len(tree.roots) == 2

    def test_empty_edge_is_ear(self):
        ok, tree = gyo_reduction(Hypergraph([[], _v("x", "y")]))
        assert ok


class TestJoinTree:
    def test_running_intersection_validated(self):
        q = parse_cq("Q(a, b, c, d) :- R(a, b), S(b, c), T(c, d)")
        tree = join_tree(q)
        tree.validate()  # must not raise
        assert len(tree.all_nodes()) == 3

    def test_cyclic_query_rejected(self):
        q = parse_cq("Q(x, y, z) :- R(x, y), S(y, z), T(x, z)")
        with pytest.raises(ValueError):
            join_tree(q)

    def test_children_sorted_by_index(self):
        q = parse_cq("Q(h, a, b, c) :- Hub(h, a, b, c), A(a), B(b), C(c)")
        tree = join_tree(q)
        for node in tree.all_nodes():
            indices = [c.index for c in node.children]
            assert indices == sorted(indices)
        hub = tree.nodes_by_index[0]
        assert [c.index for c in hub.children] == [1, 2]  # C became Hub's witness

    def test_deterministic_shape(self):
        q1 = parse_cq("Q(h, a, b, c) :- Hub(h, a, b, c), A(a), B(b), C(c)")
        q2 = parse_cq("Q(h, a, b, c) :- Hub2(h, a, b, c), A2(a), B2(b), C2(c)")
        t1, t2 = join_tree(q1), join_tree(q2)

        def shape(node):
            return (node.index, sorted(v.name for v in node.variables),
                    [shape(c) for c in node.children])

        assert [shape(r) for r in t1.roots] == [shape(r) for r in t2.roots]

    def test_reroot_preserves_running_intersection(self):
        q = parse_cq("Q(a, b, c, d) :- R(a, b), S(b, c), T(c, d)")
        tree = join_tree(q)
        for index in range(3):
            rerooted = tree.rerooted_at(index)
            rerooted.validate()
            assert rerooted.roots[0].index == index
            assert len(rerooted.all_nodes()) == 3

    def test_reroot_keeps_other_components(self):
        q = parse_cq("Q(a, b, c, d) :- R(a, b), S(c, d)")
        tree = join_tree(q)
        rerooted = tree.rerooted_at(1)
        assert {r.index for r in rerooted.roots} == {0, 1}
        assert rerooted.roots[0].index == 1  # requested root comes first

    def test_parent_variables(self):
        q = parse_cq("Q(a, b, c) :- R(a, b), S(b, c)")
        tree = join_tree(q)
        root = tree.roots[0]
        assert root.parent_variables() == frozenset()
        child = root.children[0]
        assert child.parent_variables() == frozenset([Variable("b")])

    def test_validate_catches_violations(self):
        from repro.query.acyclicity import JoinTree, JoinTreeNode

        # Two disconnected nodes sharing a variable: running intersection fails.
        a = JoinTreeNode(0, frozenset(_v("x", "y")))
        b = JoinTreeNode(1, frozenset(_v("x", "z")))
        broken = JoinTree([a, b], {0: a, 1: b})
        with pytest.raises(ValueError):
            broken.validate()
