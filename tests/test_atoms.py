"""Unit tests for terms and atoms."""

import pytest

from repro.query.atoms import Atom, Constant, Variable, variables_of


class TestVariable:
    def test_equality_by_name(self):
        assert Variable("x") == Variable("x")
        assert Variable("x") != Variable("y")

    def test_hashable(self):
        assert len({Variable("x"), Variable("x"), Variable("y")}) == 2

    def test_distinct_from_constant_of_same_payload(self):
        assert Variable("x") != Constant("x")
        assert hash(Variable("x")) != hash(Constant("x"))

    def test_rejects_empty_name(self):
        with pytest.raises(ValueError):
            Variable("")

    def test_renamed(self):
        assert Variable("y").renamed("#1") == Variable("y#1")

    def test_str(self):
        assert str(Variable("abc")) == "abc"


class TestConstant:
    def test_equality_by_value(self):
        assert Constant(5) == Constant(5)
        assert Constant(5) != Constant("5")

    def test_rejects_unhashable(self):
        with pytest.raises(TypeError):
            Constant([1, 2])


class TestAtom:
    def test_arity_and_variables(self):
        atom = Atom("R", [Variable("x"), Constant(5), Variable("y"), Variable("x")])
        assert atom.arity == 4
        assert atom.variables() == (Variable("x"), Variable("y"), Variable("x"))
        assert atom.variable_set() == frozenset({Variable("x"), Variable("y")})
        assert atom.constants() == (Constant(5),)

    def test_repeated_variables(self):
        assert Atom("R", [Variable("x"), Variable("x")]).has_repeated_variables()
        assert not Atom("R", [Variable("x"), Variable("y")]).has_repeated_variables()

    def test_substitute(self):
        atom = Atom("R", [Variable("x"), Variable("y")])
        mapped = atom.substitute({Variable("x"): Variable("z")})
        assert mapped == Atom("R", [Variable("z"), Variable("y")])
        # Substitution does not mutate the original.
        assert atom.terms[0] == Variable("x")

    def test_substitute_to_constant(self):
        atom = Atom("R", [Variable("x")])
        assert atom.substitute({Variable("x"): Constant(3)}) == Atom("R", [Constant(3)])

    def test_rejects_bad_terms(self):
        with pytest.raises(TypeError):
            Atom("R", ["not-a-term"])

    def test_rejects_empty_relation_name(self):
        with pytest.raises(ValueError):
            Atom("", [Variable("x")])

    def test_str(self):
        atom = Atom("R", [Variable("x"), Constant(1)])
        assert str(atom) == "R(x, 1)"


def test_variables_of_union():
    atoms = [
        Atom("R", [Variable("x"), Variable("y")]),
        Atom("S", [Variable("y"), Constant(0), Variable("z")]),
    ]
    assert variables_of(atoms) == frozenset({Variable("x"), Variable("y"), Variable("z")})
