"""Tests for the Zhao et al. baseline samplers: uniformity (chi-square),
support correctness, rejection accounting, and the without-replacement
wrapper."""

import random
from collections import Counter

import pytest

from repro import Database, Relation, parse_cq
from repro.database.joins import evaluate_cq
from repro.sampling import (
    ExactWeightSampler,
    NaiveRejectionSampler,
    OlkenSampler,
    OlkenThenExactSampler,
    WithoutReplacementSampler,
    sample_distinct,
)

ALL_SAMPLERS = [
    ExactWeightSampler,
    OlkenSampler,
    OlkenThenExactSampler,
    NaiveRejectionSampler,
]


@pytest.fixture()
def skewed_db():
    """A join with a heavily skewed degree distribution — the case where
    uniform-per-bucket sampling *without* bias correction would fail."""
    rows_r = [(i, 0) for i in range(8)] + [(100, 1)]
    rows_s = [(0, 0)] + [(1, j) for j in range(16)]
    return Database([
        Relation("R", ("a", "b"), rows_r),
        Relation("S", ("b", "c"), rows_s),
    ])


QUERY = parse_cq("Q(a, b, c) :- R(a, b), S(b, c)")


@pytest.mark.parametrize("sampler_cls", ALL_SAMPLERS)
def test_support_is_exactly_the_answer_set(sampler_cls, skewed_db):
    truth = evaluate_cq(QUERY, skewed_db)
    sampler = sampler_cls(QUERY, skewed_db, rng=random.Random(0))
    seen = {sampler.sample() for __ in range(2000)}
    assert seen <= truth
    assert seen == truth  # 2000 draws over 24 answers: all hit w.h.p.


@pytest.mark.parametrize("sampler_cls", ALL_SAMPLERS)
def test_uniform_under_skew(sampler_cls, skewed_db):
    """Chi-square uniformity on a skewed join (8 light + 16 heavy answers)."""
    truth = sorted(evaluate_cq(QUERY, skewed_db))
    trials = 24_000
    sampler = sampler_cls(QUERY, skewed_db, rng=random.Random(99))
    counts = Counter(sampler.sample() for __ in range(trials))
    expected = trials / len(truth)
    chi2 = sum((counts[t] - expected) ** 2 / expected for t in truth)
    # dof = 23; 99.9% quantile ≈ 49.7.
    assert chi2 < 49.7, f"{sampler_cls.__name__}: chi2={chi2:.1f}"


def test_exact_weight_never_rejects(skewed_db):
    sampler = ExactWeightSampler(QUERY, skewed_db, rng=random.Random(1))
    for __ in range(500):
        sampler.sample()
    assert sampler.statistics.rejections == 0
    assert sampler.statistics.acceptance_rate == 1.0


def test_olken_rejects_under_skew(skewed_db):
    sampler = OlkenSampler(QUERY, skewed_db, rng=random.Random(1))
    for __ in range(500):
        sampler.sample()
    assert sampler.statistics.rejections > 0


def test_exact_weight_count(skewed_db):
    sampler = ExactWeightSampler(QUERY, skewed_db, rng=random.Random(0))
    assert sampler.answer_count == len(evaluate_cq(QUERY, skewed_db))


@pytest.mark.parametrize("sampler_cls", ALL_SAMPLERS)
def test_empty_answer_set_raises(sampler_cls):
    db = Database([
        Relation("R", ("a", "b"), [(1, 5)]),
        Relation("S", ("b", "c"), [(9, 9)]),
    ])
    sampler = sampler_cls(QUERY, db, rng=random.Random(0))
    assert sampler.is_empty()
    with pytest.raises(LookupError):
        sampler.sample()


class TestWithoutReplacement:
    def test_collects_all_distinct(self, skewed_db):
        truth = evaluate_cq(QUERY, skewed_db)
        sampler = ExactWeightSampler(QUERY, skewed_db, rng=random.Random(3))
        out = sample_distinct(sampler, len(truth))
        assert set(out) == truth

    def test_duplicates_counted(self, skewed_db):
        truth = evaluate_cq(QUERY, skewed_db)
        sampler = ExactWeightSampler(QUERY, skewed_db, rng=random.Random(3))
        stream = WithoutReplacementSampler(sampler)
        for __ in range(len(truth)):
            next(stream)
        # Coupon collector: gathering all n answers needs ≈ n·H_n draws.
        assert stream.draws >= len(truth)
        assert stream.duplicates == stream.draws - len(truth)

    def test_draw_budget_halts(self, skewed_db):
        sampler = ExactWeightSampler(QUERY, skewed_db, rng=random.Random(3))
        out = sample_distinct(sampler, 10_000, max_draws=50)
        assert len(out) <= 51  # budget checked between emissions

    def test_coupon_collector_growth(self, skewed_db):
        """Collecting the last answers must cost far more draws per answer
        than the first ones — the effect behind Figure 1's EW blow-up."""
        truth = evaluate_cq(QUERY, skewed_db)
        n = len(truth)
        sampler = ExactWeightSampler(QUERY, skewed_db, rng=random.Random(8))
        stream = WithoutReplacementSampler(sampler)
        half = n // 2
        for __ in range(half):
            next(stream)
        draws_first_half = stream.draws
        for __ in range(n - half):
            next(stream)
        draws_second_half = stream.draws - draws_first_half
        assert draws_second_half > draws_first_half
