"""Run the doctests embedded in module and package docstrings.

The README-style examples in docstrings are part of the public contract;
this keeps them executable.
"""

import doctest

import pytest

import repro
import repro.core.shuffle
import repro.database.delta
import repro.faults
import repro.query.parser
import repro.service
import repro.service.cache
import repro.service.cursor
import repro.service.query_service
import repro.server.sessions
import repro.server.testing
import repro.storage.values


@pytest.mark.parametrize(
    "module",
    [
        repro,
        repro.core.shuffle,
        repro.database.delta,
        repro.faults,
        repro.query.parser,
        repro.service,
        repro.service.cache,
        repro.service.cursor,
        repro.service.query_service,
        repro.server.sessions,
        repro.server.testing,
        repro.storage.values,
    ],
    ids=lambda m: m.__name__,
)
def test_module_doctests(module):
    results = doctest.testmod(module, verbose=False)
    assert results.failed == 0, f"{results.failed} doctest failure(s) in {module.__name__}"
    assert results.attempted > 0, f"no doctests found in {module.__name__}"
