"""Unit tests for the UnionOfConjunctiveQueries class itself."""

import pytest

from repro.query import (
    ConjunctiveQuery,
    QueryConstructionError,
    UnionOfConjunctiveQueries,
    intersection_cq,
    parse_cq,
    parse_ucq,
)


@pytest.fixture()
def union3():
    return parse_ucq(
        "Q(a, b) :- R1(a, b) ; Q(a, b) :- R2(a, b) ; Q(a, b) :- R3(a, b)"
    )


class TestConstruction:
    def test_basic_properties(self, union3):
        assert len(union3) == 3
        assert union3[0].body[0].relation == "R1"
        assert [q.body[0].relation for q in union3] == ["R1", "R2", "R3"]

    def test_default_name(self, union3):
        assert union3.name == "Q_or_Q_or_Q"

    def test_empty_rejected(self):
        with pytest.raises(QueryConstructionError):
            UnionOfConjunctiveQueries([])

    def test_mismatched_heads_rejected(self):
        q1 = parse_cq("Q(x) :- R(x)")
        q2 = parse_cq("Q(x, y) :- S(x, y)")
        with pytest.raises(QueryConstructionError):
            UnionOfConjunctiveQueries([q1, q2])

    def test_str_mentions_union(self, union3):
        assert str(union3).count("UNION") == 2


class TestIntersections:
    def test_single_intersection_is_member(self, union3):
        q = union3.intersection([1])
        assert [a.relation for a in q.body] == ["R2"]

    def test_pairwise_intersection_conjoins(self, union3):
        q = union3.intersection([0, 2])
        assert sorted(a.relation for a in q.body) == ["R1", "R3"]

    def test_indices_deduplicated_and_sorted(self, union3):
        assert union3.intersection([2, 0, 2]) == union3.intersection([0, 2])

    def test_empty_indices_rejected(self, union3):
        with pytest.raises(QueryConstructionError):
            union3.intersection([])

    def test_all_intersections_count(self, union3):
        assert len(union3.all_intersections()) == 7

    def test_intersection_cq_renames_existentials(self):
        q1 = parse_cq("Q(x) :- R(x, y)")
        q2 = parse_cq("Q(x) :- S(x, y)")
        joint = intersection_cq([q1, q2])
        existentials = {v.name for v in joint.existential_variables}
        assert len(existentials) == 2  # y#0 and y#1, not a shared y

    def test_shared_existential_would_change_semantics(self):
        # Sanity check of *why* renaming matters: with a shared y, the
        # conjoined query would demand a single witness for both atoms.
        q1 = parse_cq("Q(x) :- R(x, y)")
        q2 = parse_cq("Q(x) :- S(x, y)")
        joint = intersection_cq([q1, q2])
        from repro import Database, Relation, evaluate_cq

        db = Database([
            Relation("R", ("a", "b"), [(1, 100)]),
            Relation("S", ("a", "b"), [(1, 200)]),
        ])
        # (1,) answers both CQs with different witnesses — the intersection
        # must keep it.
        assert evaluate_cq(joint, db) == {(1,)}


class TestClassPredicates:
    def test_union_of_free_connex(self, union3):
        assert union3.is_union_of_free_connex()

    def test_union_with_hard_member(self):
        u = parse_ucq(
            "Q(x, z) :- R(x, y), S(y, z) ; Q(x, z) :- T(x, z)"
        )
        assert not u.is_union_of_free_connex()

    def test_mc_candidate_positive(self, union3):
        assert union3.is_mutually_compatible_candidate()

    def test_mc_candidate_negative_example_5_1(self):
        u = parse_ucq(
            "Q(x, y, z) :- R(x, y), S(y, z) ; Q(x, y, z) :- S(y, z), T(x, z)"
        )
        assert u.is_union_of_free_connex()
        assert not u.is_mutually_compatible_candidate()
