"""Tests for Algorithms 6–8 / Theorem 5.5 — mc-UCQ random access."""

import random

import pytest

from repro import (
    CQIndex,
    Database,
    IncompatibleUnionError,
    MCUCQIndex,
    OutOfBoundError,
    Relation,
    parse_ucq,
)
from repro.core.union_access import enumerate_union, rank_in_member_order
from repro.database.joins import evaluate_ucq


@pytest.fixture()
def overlapping_union():
    db = Database([
        Relation("R1", ("a", "b"), [(i, i % 3) for i in range(12)]),
        Relation("R2", ("a", "b"), [(i, i % 3) for i in range(6, 18)]),
        Relation("S", ("b", "c"), [(i % 3, i % 2) for i in range(6)]),
    ])
    ucq = parse_ucq(
        "Q(a, b, c) :- R1(a, b), S(b, c) ; Q(a, b, c) :- R2(a, b), S(b, c)"
    )
    return ucq, db


@pytest.fixture()
def three_way_union():
    db = Database([
        Relation("R1", ("a", "b"), [(i, i % 2) for i in range(0, 10)]),
        Relation("R2", ("a", "b"), [(i, i % 2) for i in range(4, 14)]),
        Relation("R3", ("a", "b"), [(i, i % 2) for i in range(8, 18)]),
        Relation("S", ("b", "c"), [(0, "p"), (1, "q"), (1, "r")]),
    ])
    ucq = parse_ucq(
        "Q(a, b, c) :- R1(a, b), S(b, c) ; "
        "Q(a, b, c) :- R2(a, b), S(b, c) ; "
        "Q(a, b, c) :- R3(a, b), S(b, c)"
    )
    return ucq, db


class TestRankInMemberOrder:
    def test_counts_elements_not_succeeding(self, overlapping_union):
        ucq, db = overlapping_union
        index = MCUCQIndex(ucq, db)
        member = index.member_indexes[0]
        subset = index.intersection_indexes[(0, frozenset({1}))]
        # Walk the member order; the rank must be monotone and end at |T|.
        previous = 0
        for position in range(member.count):
            answer = member.access(position)
            rank = rank_in_member_order(subset, member, answer)
            assert rank in (previous, previous + 1)
            in_subset = subset.inverted_access(answer) is not None
            assert rank == previous + 1 if in_subset else rank == previous
            previous = rank
        assert previous == subset.count

    def test_requires_member_element(self, overlapping_union):
        ucq, db = overlapping_union
        index = MCUCQIndex(ucq, db)
        member = index.member_indexes[0]
        subset = index.intersection_indexes[(0, frozenset({1}))]
        with pytest.raises(ValueError):
            rank_in_member_order(subset, member, ("nope", 0, 0))


class TestMCUCQIndex:
    def test_count_matches_ground_truth(self, overlapping_union):
        ucq, db = overlapping_union
        index = MCUCQIndex(ucq, db)
        assert index.count == len(evaluate_ucq(ucq, db))

    def test_access_is_a_bijection_onto_the_union(self, overlapping_union):
        ucq, db = overlapping_union
        index = MCUCQIndex(ucq, db)
        answers = [index.access(i) for i in range(index.count)]
        assert len(set(answers)) == len(answers)
        assert set(answers) == evaluate_ucq(ucq, db)

    def test_access_order_equals_durand_strozecki_order(self, overlapping_union):
        ucq, db = overlapping_union
        index = MCUCQIndex(ucq, db)
        assert list(index) == [index.access(i) for i in range(index.count)]

    def test_out_of_bounds(self, overlapping_union):
        ucq, db = overlapping_union
        index = MCUCQIndex(ucq, db)
        with pytest.raises(OutOfBoundError):
            index.access(index.count)
        with pytest.raises(OutOfBoundError):
            index.access(-1)

    def test_three_way_union(self, three_way_union):
        ucq, db = three_way_union
        index = MCUCQIndex(ucq, db)
        truth = evaluate_ucq(ucq, db)
        assert index.count == len(truth)
        answers = [index.access(i) for i in range(index.count)]
        assert set(answers) == truth
        assert len(set(answers)) == len(answers)
        assert list(index) == answers

    def test_random_order_is_a_permutation(self, three_way_union):
        ucq, db = three_way_union
        index = MCUCQIndex(ucq, db)
        out = list(index.random_order(random.Random(9)))
        assert sorted(out) == sorted(evaluate_ucq(ucq, db))

    def test_disjoint_union(self):
        db = Database([
            Relation("R1", ("a", "b"), [(1, 0), (2, 0)]),
            Relation("R2", ("a", "b"), [(10, 0), (11, 0)]),
            Relation("S", ("b", "c"), [(0, "x")]),
        ])
        ucq = parse_ucq(
            "Q(a, b, c) :- R1(a, b), S(b, c) ; Q(a, b, c) :- R2(a, b), S(b, c)"
        )
        index = MCUCQIndex(ucq, db)
        assert index.count == 4
        assert {index.access(i) for i in range(4)} == evaluate_ucq(ucq, db)

    def test_identical_members(self):
        db = Database([
            Relation("R1", ("a", "b"), [(1, 0), (2, 0)]),
            Relation("S", ("b", "c"), [(0, "x")]),
        ])
        ucq = parse_ucq(
            "Q(a, b, c) :- R1(a, b), S(b, c) ; Q(a, b, c) :- R1(a, b), S(b, c)"
        )
        index = MCUCQIndex(ucq, db)
        assert index.count == 2

    def test_empty_member(self):
        db = Database([
            Relation("R1", ("a", "b"), [(1, 0)]),
            Relation("R2", ("a", "b"), []),
            Relation("S", ("b", "c"), [(0, "x")]),
        ])
        ucq = parse_ucq(
            "Q(a, b, c) :- R1(a, b), S(b, c) ; Q(a, b, c) :- R2(a, b), S(b, c)"
        )
        index = MCUCQIndex(ucq, db)
        assert index.count == 1
        assert index.access(0) == (1, 0, "x")

    def test_misaligned_union_rejected(self):
        # Shapes differ: a 2-atom chain vs a single binary atom.
        db = Database([
            Relation("R", ("a", "b"), [(1, 0)]),
            Relation("S", ("b", "c"), [(0, "x")]),
            Relation("T", ("a", "b", "c"), [(1, 0, "x"), (5, 5, "y")]),
        ])
        ucq = parse_ucq(
            "Q(a, b, c) :- R(a, b), S(b, c) ; Q(a, b, c) :- T(a, b, c)"
        )
        with pytest.raises(IncompatibleUnionError):
            MCUCQIndex(ucq, db)


class TestEnumerateUnion:
    def test_single_member(self, overlapping_union):
        ucq, db = overlapping_union
        index = CQIndex(ucq.queries[0], db)
        assert list(enumerate_union([index])) == list(index)

    def test_no_repetitions(self, overlapping_union):
        ucq, db = overlapping_union
        members = [CQIndex(q, db) for q in ucq.queries]
        out = list(enumerate_union(members))
        assert len(out) == len(set(out))
        assert set(out) == evaluate_ucq(ucq, db)
