"""Threaded stress: readers must observe exactly one published version.

The writer swaps whole *generations* of R facts, one ``Delta`` per swap —
so every published snapshot holds a single generation of answers, always
with the same count. Reader threads page and sample through cursors while
the writer churns; any torn read (a half-applied batch, or a view mixing
two published versions) shows up as a mixed-generation page or a wrong
count. Runs in the fast (``-m "not slow"``) CI lane by design: the whole
storm is a few thousand reads over a small database.
"""

import random
import threading

from repro import Database, QueryService, Relation

QUERY = "Q(a, b, c) :- R(a, b), S(b, c)"

GEN_STRIDE = 10_000   # generation g owns R values [g*stride, g*stride + N)
N_PER_GEN = 30
KEYS = 5
PARTNERS = 4
GENERATIONS = 40
EXPECTED_COUNT = N_PER_GEN * PARTNERS


def generation_rows(generation):
    return [(generation * GEN_STRIDE + i, i % KEYS) for i in range(N_PER_GEN)]


def build_service():
    db = Database([
        Relation("R", ("a", "b"), generation_rows(0)),
        Relation(
            "S", ("b", "c"),
            [(j, k) for j in range(KEYS) for k in range(PARTNERS)],
        ),
    ])
    return QueryService(db, dynamic=True)


def test_every_read_observes_exactly_one_published_version():
    service = build_service()
    service.count(QUERY)  # warm the dynamic entry
    errors = []
    done = threading.Event()

    def check_single_generation(answers, where):
        generations = {a // GEN_STRIDE for a, __, __ in answers}
        if len(generations) > 1:
            raise AssertionError(
                f"{where} mixed generations {sorted(generations)}"
            )

    def writer():
        try:
            for generation in range(1, GENERATIONS + 1):
                with service.transaction() as txn:
                    for row in generation_rows(generation - 1):
                        txn.delete("R", row)
                    for row in generation_rows(generation):
                        txn.insert("R", row)
        except Exception as exc:  # pragma: no cover - the failure mode
            errors.append(exc)
        finally:
            done.set()

    def pager():
        try:
            while not done.is_set():
                # A reresolving cursor follows newly published versions
                # *between* reads (live-pagination semantics); a reader
                # that needs one consistent multi-read session holds the
                # pinned snapshot itself.
                view = service.cursor(QUERY).pinned
                count = view.count
                assert count == EXPECTED_COUNT, count
                seen = []
                for start in range(0, count, 17):
                    seen.extend(view.batch(range(start, min(start + 17, count))))
                assert len(seen) == count
                check_single_generation(seen, "pages")
        except Exception as exc:  # pragma: no cover - the failure mode
            errors.append(exc)

    def sampler():
        rng = random.Random(0xBEEF)
        try:
            while not done.is_set():
                view = service.cursor(QUERY).pinned
                sample = view.sample_many(25, rng)
                assert len(sample) == 25
                check_single_generation(sample, "sample")
                # Mutual consistency of a pinned view: an answer the
                # snapshot served must invert to its own position.
                answer = view.access(7)
                assert view.inverted_access(answer) == 7
        except Exception as exc:  # pragma: no cover - the failure mode
            errors.append(exc)

    def shuffler():
        rng = random.Random(0xCAFE)
        try:
            while not done.is_set():
                # A full in-flight shuffle while the writer churns: the
                # pinned snapshot keeps it a permutation of one version.
                answers = list(service.cursor(QUERY).random_order(rng))
                assert len(answers) == EXPECTED_COUNT
                assert len(set(answers)) == EXPECTED_COUNT
                check_single_generation(answers, "random_order")
        except Exception as exc:  # pragma: no cover - the failure mode
            errors.append(exc)

    threads = [
        threading.Thread(target=writer),
        threading.Thread(target=pager),
        threading.Thread(target=pager),
        threading.Thread(target=sampler),
        threading.Thread(target=shuffler),
    ]
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join(timeout=120)
    assert not errors, errors
    assert not any(thread.is_alive() for thread in threads)

    # The storm settled on the final generation, and no reader ever took
    # the entry lock.
    final = service.cursor(QUERY)
    assert final.count == EXPECTED_COUNT
    assert {a // GEN_STRIDE for a, __, __ in final.batch(range(final.count))} \
        == {GENERATIONS}
    stats = service.stats()
    assert stats.locked_reads == 0
    assert stats.snapshot_reads > 0
    # How many bursts were absorbed in place vs. served by a racing
    # reader's rebuild is timing-dependent (a reader probing the miss
    # window between the version bump and the writer's re-key builds a
    # fresh entry); the invariant is that the write path stayed on the
    # delta surface and the live entry publishes snapshots.
    assert stats.batched_updates + stats.dynamic_builds >= 1
    assert stats.in_place_updates == 0
    assert stats.snapshot_publishes >= 1
