"""Unit tests for Proposition 4.2 — normalization and the free-connex →
full-acyclic reduction."""

import pytest

from repro import Database, Relation, NotFreeConnexError, parse_cq
from repro.core.reduction import prepare_query, reduce_to_full_acyclic
from repro.database.joins import evaluate_cq


class TestPrepareQuery:
    def test_constant_selection(self):
        db = Database([Relation("R", ("c1", "c2"), [(1, "a"), (2, "a"), (1, "b")])])
        q = parse_cq("Q(x) :- R(x, 'a')")
        prepared = prepare_query(q, db)
        assert prepared.atoms[0].variables == ("x",)
        assert set(prepared.atoms[0].relation.rows) == {(1,), (2,)}

    def test_repeated_variable_filter(self):
        db = Database([Relation("R", ("c1", "c2"), [(1, 1), (1, 2), (3, 3)])])
        q = parse_cq("Q(x) :- R(x, x)")
        prepared = prepare_query(q, db)
        assert set(prepared.atoms[0].relation.rows) == {(1,), (3,)}

    def test_columns_are_sorted_variable_names(self):
        db = Database([Relation("R", ("c1", "c2", "c3"), [(1, 2, 3)])])
        q = parse_cq("Q(z, a) :- R(z, a, z)")
        prepared = prepare_query(q, db)
        assert prepared.atoms[0].relation.columns == ("a", "z")
        # Row values reordered accordingly: a=2, z must satisfy z=c1=c3.
        assert prepared.atoms[0].relation.rows == []

    def test_arity_mismatch_rejected(self):
        db = Database([Relation("R", ("c1",), [(1,)])])
        with pytest.raises(ValueError):
            prepare_query(parse_cq("Q(x, y) :- R(x, y)"), db)

    def test_self_join_gets_independent_copies(self):
        db = Database([Relation("E", ("u", "v"), [(1, 2), (2, 3)])])
        q = parse_cq("Q(a, b, c) :- E(a, b), E(b, c)")
        prepared = prepare_query(q, db)
        assert prepared.atoms[0].relation.name != prepared.atoms[1].relation.name


class TestReduceToFullAcyclic:
    def test_rejects_non_free_connex(self):
        db = Database([Relation("R", ("a", "b"), []), Relation("S", ("b", "c"), [])])
        with pytest.raises(NotFreeConnexError):
            reduce_to_full_acyclic(parse_cq("Q(x, z) :- R(x, y), S(y, z)"), db)

    def test_projection_case(self, chain_db):
        q = parse_cq("Q(a) :- R(a, b), S(b, c)")
        reduced = reduce_to_full_acyclic(q, chain_db)
        all_columns = {c for node in reduced.all_nodes() for c in node.variables}
        assert all_columns == {"a"}
        # The full join over the reduced nodes equals the answers.
        answers = evaluate_cq(q, chain_db)
        node_rows = [set(n.relation.rows) for n in reduced.all_nodes() if n.variables]
        assert set().union(*node_rows) == answers

    def test_existential_only_node_becomes_zero_ary_root(self):
        db = Database([
            Relation("R", ("a",), [(1,), (2,)]),
            Relation("S", ("b",), [(5,)]),
        ])
        q = parse_cq("Q(a) :- R(a), S(b)")
        reduced = reduce_to_full_acyclic(q, db)
        arities = sorted(len(r.variables) for r in reduced.roots)
        assert arities == [0, 1]

    def test_empty_answer_set_propagates(self):
        db = Database([
            Relation("R", ("a",), [(1,)]),
            Relation("S", ("b",), []),
        ])
        q = parse_cq("Q(a) :- R(a), S(b)")
        reduced = reduce_to_full_acyclic(q, db)
        assert any(len(node.relation) == 0 for node in reduced.all_nodes())

    def test_unreduced_full_query_allowed(self, chain_db):
        q = parse_cq("Q(a, b, c) :- R(a, b), S(b, c)")
        reduced = reduce_to_full_acyclic(q, chain_db, reduce=False)
        # Dangling tuples survive in the nodes but weights will zero them out.
        total_rows = sum(len(n.relation) for n in reduced.all_nodes())
        assert total_rows == len(chain_db.relation("R")) + len(chain_db.relation("S"))

    def test_non_full_query_always_reduces(self, chain_db):
        q = parse_cq("Q(a) :- R(a, b), S(b, c)")
        reduced = reduce_to_full_acyclic(q, chain_db, reduce=False)  # ignored
        rows = set().union(
            *(set(n.relation.rows) for n in reduced.all_nodes() if n.variables)
        )
        assert rows == evaluate_cq(q, chain_db)

    def test_root_atom_rerooting(self, example44_db):
        q = parse_cq("Q(v, w, x, y, z) :- R1(v, w, x), R2(w, y), R3(x, z)")
        reduced = reduce_to_full_acyclic(q, example44_db, root_atom=0)
        assert len(reduced.roots) == 1
        assert set(reduced.roots[0].variables) == {"v", "w", "x"}
        assert [set(c.variables) for c in reduced.roots[0].children] == [
            {"w", "y"},
            {"x", "z"},
        ]

    def test_boolean_query(self):
        db = Database([Relation("R", ("a", "b"), [(1, 2)])])
        q = parse_cq("Q() :- R(x, y)")
        reduced = reduce_to_full_acyclic(q, db)
        assert all(node.variables == () for node in reduced.all_nodes())
