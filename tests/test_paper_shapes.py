"""Shape-regression tests: the paper's qualitative findings, asserted on
counting statistics rather than wall-clock (so they are robust in CI).

Each test pins one row of EXPERIMENTS.md to a mechanism the code must
exhibit — if a refactor breaks the *reason* a figure looks the way it
does, these fail even when absolute timings drift.
"""

import math
import random

import pytest

from repro import CQIndex, UnionRandomEnumerator
from repro.database.joins import evaluate_cq
from repro.sampling import ExactWeightSampler, WithoutReplacementSampler
from repro.tpch.queries import CQ_QUERIES, UCQ_QUERIES


class TestFigure1Mechanism:
    """Sample(EW)'s blow-up at large k is the coupon collector: reaching
    k of n distinct answers costs ≈ n·(H_n − H_{n−k}) draws, while
    REnum(CQ) performs exactly k accesses."""

    def test_ew_draw_counts_follow_coupon_collector(self, tiny_tpch):
        query = CQ_QUERIES["Q0"]()
        n = CQIndex(query, tiny_tpch).count
        sampler = ExactWeightSampler(query, tiny_tpch, rng=random.Random(0))
        stream = WithoutReplacementSampler(sampler)
        k = int(n * 0.9)
        for __ in range(k):
            next(stream)
        expected = n * (_harmonic(n) - _harmonic(n - k))
        assert 0.8 * expected <= stream.draws <= 1.25 * expected

    def test_renum_never_draws_more_than_k(self, tiny_tpch):
        query = CQ_QUERIES["Q0"]()
        index = CQIndex(query, tiny_tpch)
        k = int(index.count * 0.9)
        emitted = 0
        for __ in index.random_order(random.Random(0)):
            emitted += 1
            if emitted == k:
                break
        assert emitted == k  # one access per answer; no rejections exist

    def test_ew_duplicates_grow_superlinearly(self, tiny_tpch):
        """Draws per decile must increase toward the end of the collection."""
        query = CQ_QUERIES["Q0"]()
        n = CQIndex(query, tiny_tpch).count
        sampler = ExactWeightSampler(query, tiny_tpch, rng=random.Random(1))
        stream = WithoutReplacementSampler(sampler)
        decile = n // 10
        draws_at = []
        for __ in range(decile * 9):
            next(stream)
            if stream.emitted() % decile == 0:
                draws_at.append(stream.draws)
        per_decile = [b - a for a, b in zip(draws_at, draws_at[1:])]
        assert per_decile[-1] > 2 * per_decile[0]


class TestFigure4Mechanism:
    """REnum(UCQ)'s overhead over the member enumerations scales with the
    intersection: disjoint unions never reject; heavy overlap rejects up
    to once per shared answer."""

    def test_rejections_ordered_by_intersection_size(self, tiny_tpch):
        rates = {}
        for name, make in UCQ_QUERIES.items():
            ucq = make()
            enum = UnionRandomEnumerator.for_indexes(
                [CQIndex(q, tiny_tpch) for q in ucq.queries], rng=random.Random(3)
            )
            emitted = sum(1 for __ in enum)
            rates[name] = enum.rejections / max(1, emitted)
        assert rates["QA_or_QE"] == 0.0  # disjoint union
        # The 3-way Q2 union has by far the largest pairwise intersections.
        assert rates["QN2_or_QP2_or_QS2"] > rates["QS7_or_QC7"]
        assert rates["QN2_or_QP2_or_QS2"] > 0.05

    def test_rejections_bounded_by_shared_answers(self, tiny_tpch):
        ucq = UCQ_QUERIES["QN2_or_QP2_or_QS2"]()
        members = [evaluate_cq(q, tiny_tpch) for q in ucq.queries]
        union_size = len(set().union(*members))
        shared = sum(len(m) for m in members) - union_size
        enum = UnionRandomEnumerator.for_indexes(
            [CQIndex(q, tiny_tpch) for q in ucq.queries], rng=random.Random(4)
        )
        emitted = sum(1 for __ in enum)
        assert emitted == union_size
        assert enum.rejections <= shared  # each shared answer rejects ≤ once


class TestFigure5Mechanism:
    def test_rejections_concentrate_early(self, tiny_tpch):
        """Shared answers are likelier to be drawn early (double weight)
        and are deleted from non-owners on first rejection, so the second
        half of a run must see at most as many rejections as the first."""
        ucq = UCQ_QUERIES["QN2_or_QP2_or_QS2"]()
        halves = [0, 0]
        for seed in range(5):  # average out run-to-run noise
            enum = UnionRandomEnumerator.for_indexes(
                [CQIndex(q, tiny_tpch) for q in ucq.queries],
                rng=random.Random(seed),
            )
            total = sum(1 for __ in enum)
            enum2 = UnionRandomEnumerator.for_indexes(
                [CQIndex(q, tiny_tpch) for q in ucq.queries],
                rng=random.Random(seed),
            )
            emitted = 0
            previous = 0
            for __ in enum2:
                emitted += 1
                if emitted == total // 2:
                    previous = enum2.rejections
            halves[0] += previous
            halves[1] += enum2.rejections - previous
        assert halves[0] >= halves[1]


class TestRSMechanism:
    def test_acceptance_rate_is_answer_over_product(self, tiny_tpch):
        from repro.sampling import NaiveRejectionSampler

        query = CQ_QUERIES["Q0"]()
        truth = CQIndex(query, tiny_tpch).count
        sampler = NaiveRejectionSampler(query, tiny_tpch, rng=random.Random(5))
        product = 1
        for node in sampler.reduced.all_nodes():
            product *= max(1, len(node.relation))
        theoretical = truth / product
        for __ in range(20000):
            sampler.sample_attempt()
        measured = sampler.statistics.acceptance_rate
        assert measured == pytest.approx(theoretical, rel=0.5)


def _harmonic(n: int) -> float:
    if n <= 0:
        return 0.0
    return math.log(n) + 0.5772156649 + 1 / (2 * n)
