"""Tests for in-place dynamic mc-UCQ serving: MCUCQIndex(dynamic=True),
service-level promotion of unions, tombstone compaction, write locks."""

import random
import threading

import pytest

from repro import (
    Database,
    DynamicCQIndex,
    MCUCQIndex,
    NotFreeConnexError,
    QueryService,
    Relation,
    parse_cq,
    parse_ucq,
)

UNION = "Q(a, b, c) :- R(a, b), S(b, c) ; Q(a, b, c) :- R(a, b), T(b, c)"


def fresh_db() -> Database:
    return Database([
        Relation("R", ("a", "b"), [(1, 10), (2, 20), (3, 10)]),
        Relation("S", ("b", "c"), [(10, 1), (10, 2), (20, 3)]),
        Relation("T", ("b", "c"), [(10, 2), (20, 3), (20, 4)]),
    ])


def _assert_matches_fresh_static(dynamic: MCUCQIndex, database: Database):
    fresh = MCUCQIndex(dynamic.ucq, database)
    assert dynamic.count == fresh.count
    assert list(dynamic) == list(fresh)
    assert [dynamic.access(i) for i in range(dynamic.count)] == \
        [fresh.access(i) for i in range(fresh.count)]
    # The member/intersection inverted-access bijections the union's
    # Durand–Strozecki machinery relies on.
    for member, fresh_member in zip(dynamic.member_indexes, fresh.member_indexes):
        answers = list(member)
        assert answers == list(fresh_member)
        for position, answer in enumerate(answers):
            assert member.inverted_access(answer) == position
    for key, forest in dynamic.intersection_indexes.items():
        assert list(forest) == list(fresh.intersection_indexes[key])


class TestDynamicUnionIndex:
    def test_fresh_build_matches_static(self):
        db = fresh_db()
        _assert_matches_fresh_static(
            MCUCQIndex(parse_ucq(UNION), db, dynamic=True), db
        )

    def test_insert_reaches_members_and_intersections(self):
        db = fresh_db()
        dynamic = MCUCQIndex(parse_ucq(UNION), db, dynamic=True)
        before = dynamic.count
        # (10, 5) lands in S only: member 0 grows, the S∩T intersection
        # does not.
        dynamic.insert("S", (10, 5))
        db.relation("S").rows.append((10, 5))
        assert dynamic.count == before + 2  # two R facts join b=10
        _assert_matches_fresh_static(dynamic, db)
        # (20, 3) is already in both S and T — inserting into S is a
        # no-op set-wise... it is already there, so nothing changes.
        intersection = next(iter(dynamic.intersection_indexes.values()))
        t_before = intersection.count
        # (10, 1) into T: S already holds it, so the intersection grows.
        dynamic.insert("T", (10, 1))
        db.relation("T").rows.append((10, 1))
        assert intersection.count > t_before
        _assert_matches_fresh_static(dynamic, db)

    def test_delete_shrinks_intersections(self):
        db = fresh_db()
        dynamic = MCUCQIndex(parse_ucq(UNION), db, dynamic=True)
        # (10, 2) is in S ∩ T; deleting it from S must remove it from the
        # intersection while T keeps it.
        dynamic.delete("S", (10, 2))
        db.relation("S").rows.remove((10, 2))
        _assert_matches_fresh_static(dynamic, db)
        # Re-insert revives it everywhere.
        dynamic.insert("S", (10, 2))
        db.relation("S").rows.append((10, 2))
        _assert_matches_fresh_static(dynamic, db)

    def test_static_union_rejects_in_place_mutation(self):
        static = MCUCQIndex(parse_ucq(UNION), fresh_db())
        assert not static.supports_updates
        with pytest.raises(TypeError):
            static.insert("S", (10, 99))

    def test_dynamic_union_requires_full_members(self):
        projected = parse_ucq(
            "Q(a) :- R(a, b), S(b, c) ; Q(a) :- R(a, b), T(b, c)"
        )
        with pytest.raises(NotFreeConnexError):
            MCUCQIndex(projected, fresh_db(), dynamic=True)
        # The static build of the same union is fine.
        assert MCUCQIndex(projected, fresh_db()).count >= 0

    def test_batch_and_sampling_surface(self):
        db = fresh_db()
        dynamic = MCUCQIndex(parse_ucq(UNION), db, dynamic=True)
        dynamic.insert("R", (9, 20))
        db.relation("R").rows.append((9, 20))
        n = dynamic.count
        positions = [n - 1, 0, n - 1, n // 2]
        assert dynamic.batch(positions) == [dynamic.access(i) for i in positions]
        draws = dynamic.sample_many(n, random.Random(3))
        assert sorted(draws) == sorted(dynamic)
        assert sorted(dynamic.random_order(random.Random(4))) == sorted(dynamic)

    def test_update_storm_stays_consistent(self):
        rng = random.Random(11)
        db = fresh_db()
        dynamic = MCUCQIndex(parse_ucq(UNION), db, dynamic=True)
        for step in range(150):
            relation = rng.choice(["R", "S", "T"])
            rows = db.relation(relation).rows
            row = (rng.randrange(5), rng.randrange(3) * 10 + 10) \
                if relation == "R" else (rng.randrange(3) * 10 + 10, rng.randrange(6))
            if rng.random() < 0.6:
                if row in rows:
                    continue
                rows.append(row)
                dynamic.insert(relation, row)
            else:
                if row not in rows:
                    continue
                rows.remove(row)
                dynamic.delete(relation, row)
            if step % 30 == 29:
                _assert_matches_fresh_static(dynamic, db)
        _assert_matches_fresh_static(dynamic, db)


class TestServiceUnionPromotion:
    def test_forced_dynamic_union_survives_mutations(self):
        service = QueryService(fresh_db(), dynamic=True)
        entry = service.index(UNION)
        assert isinstance(entry, MCUCQIndex) and entry.dynamic
        count = service.count(UNION)
        assert service.insert("S", (20, 5))
        assert service.index(UNION) is entry  # absorbed, not rebuilt
        assert service.count(UNION) == count + 1
        assert service.stats().in_place_updates == 1
        # Served answers equal a cold rebuild, position for position.
        cold = MCUCQIndex(service.resolve(UNION), service.database)
        assert service.batch(UNION, range(cold.count)) == \
            cold.batch(range(cold.count))

    def test_union_promotion_after_churn(self):
        service = QueryService(fresh_db(), promote_after=2)
        for round_ in range(2):
            entry = service.index(UNION)
            assert isinstance(entry, MCUCQIndex) and not entry.dynamic
            assert service.insert("R", (50 + round_, 10))
        promoted = service.index(UNION)
        assert isinstance(promoted, MCUCQIndex) and promoted.dynamic
        stats = service.stats()
        assert stats.promotions == 1
        assert stats.mutation_invalidations == 2
        assert service.insert("R", (99, 20))
        assert service.index(UNION) is promoted
        assert service.stats().in_place_updates == 1

    def test_ineligible_union_never_promoted(self):
        projected = "Q(a) :- R(a, b), S(b, c) ; Q(a) :- R(a, b), T(b, c)"
        service = QueryService(fresh_db(), dynamic=True)
        entry = service.index(projected)
        assert isinstance(entry, MCUCQIndex) and not entry.dynamic
        assert service.insert("S", (10, 77))
        rebuilt = service.index(projected)
        assert rebuilt is not entry  # invalidated, correctly rebuilt
        assert service.count(projected) == 3


class TestTombstoneCompaction:
    def test_delete_heavy_lifetime_stays_bounded(self):
        """Regression for bounded tombstone growth: a long insert-then-
        delete lifetime must not accumulate multiplicity-0 rows without
        bound — compaction fires once they dominate a bucket."""
        query = parse_cq("Q(a, b, c) :- R(a, b), S(b, c)")
        db = Database([
            Relation("R", ("a", "b"), []),
            Relation("S", ("b", "c"), [(0, 0)]),
        ])
        dynamic = DynamicCQIndex(query, db)
        for wave in range(5):
            rows = [(wave * 1000 + i, 0) for i in range(200)]
            for row in rows:
                dynamic.insert("R", row)
            for row in rows:
                dynamic.delete("R", row)
        assert dynamic.count == 0
        assert dynamic.compactions > 0
        footprint = sum(
            len(bucket)
            for node in dynamic.nodes
            for bucket in node.buckets.values()
        )
        # 1000 rows were inserted and deleted; without compaction the R
        # bucket alone would hold all 1000 tombstones.
        assert footprint < 500
        # The structure still serves correctly after compaction + revival.
        dynamic.insert("R", (123, 0))
        assert dynamic.count == 1
        assert dynamic.access(0) == (123, 0, 0)
        assert dynamic.inverted_access((123, 0, 0)) == 0

    def test_compaction_disabled_by_fraction_one(self):
        query = parse_cq("Q(a, b) :- R(a, b)")
        db = Database([Relation("R", ("a", "b"), [])])
        # A fraction > 1 can never be exceeded: tombstones ≤ size always.
        dynamic = DynamicCQIndex(query, db, compact_fraction=2.0)
        for i in range(100):
            dynamic.insert("R", (i, 0))
        for i in range(100):
            dynamic.delete("R", (i, 0))
        assert dynamic.compactions == 0
        assert sum(len(b) for n in dynamic.nodes for b in n.buckets.values()) == 100

    def test_present_dangling_rows_survive_compaction(self):
        """Compaction may only drop multiplicity-0 rows: a present-but-
        dangling row must stay revivable by a later join-partner insert."""
        query = parse_cq("Q(a, b, c) :- R(a, b), S(b, c)")
        db = Database([
            Relation("R", ("a", "b"), []),
            Relation("S", ("b", "c"), []),
        ])
        dynamic = DynamicCQIndex(query, db)
        dynamic.insert("R", (7, 7))  # dangling: weight 0, multiplicity 1
        # Tombstone churn around it to trigger compaction.
        for i in range(50):
            dynamic.insert("R", (i + 100, 7))
        for i in range(50):
            dynamic.delete("R", (i + 100, 7))
        assert dynamic.compactions > 0
        dynamic.insert("S", (7, 1))  # the join partner arrives late
        assert dynamic.count == 1
        assert dynamic.access(0) == (7, 7, 1)


class TestWriteSafety:
    def test_lock_follows_entry_across_rekey(self):
        from repro.service.cache import IndexCache

        cache = IndexCache(capacity=4)
        cache.get_or_build("k1", lambda: "entry")
        lock = cache.lock_for("k1")
        cache.rekey("k1", "k2")
        assert cache.lock_for("k2") is lock
        cache.discard("k2")
        assert cache.lock_for("k2") is not lock  # fresh after discard

    def test_concurrent_readers_and_writer_do_not_corrupt(self):
        """Single-writer smoke test: a writer hammers insert/delete while
        readers page through the same dynamic entry. Without the per-entry
        lock, readers can observe a half-propagated weight update and
        crash inside the descent; with it, every batch is a coherent
        snapshot."""
        service = QueryService(fresh_db(), dynamic=True)
        query = "Q(a, b, c) :- R(a, b), S(b, c)"
        service.count(query)  # warm the dynamic entry
        errors = []
        stop = threading.Event()

        def writer():
            try:
                for i in range(300):
                    service.insert("R", (1000 + i, (i % 3) * 10 + 10))
                    service.delete("R", (1000 + i, (i % 3) * 10 + 10))
            except Exception as exc:  # pragma: no cover - the failure mode
                errors.append(exc)
            finally:
                stop.set()

        def reader():
            try:
                while not stop.is_set():
                    # page() clamps to the count inside the entry lock, so
                    # a write landing mid-read shortens the page instead
                    # of raising out-of-bound.
                    page = service.page(query, 0, page_size=10)
                    assert len(page) <= 10
            except Exception as exc:  # pragma: no cover - the failure mode
                errors.append(exc)

        threads = [threading.Thread(target=writer)] + [
            threading.Thread(target=reader) for __ in range(2)
        ]
        for t in threads:
            t.start()
        for t in threads:
            t.join(timeout=60)
        assert not errors
        # Every write was paired with its deleting twin, so the final
        # state is exactly the pre-storm database's answers.
        from repro.core.cq_index import CQIndex

        fresh = CQIndex(service.resolve(query), service.database)
        assert service.count(query) == fresh.count
        assert service.batch(query, range(fresh.count)) == \
            fresh.batch(range(fresh.count))


class TestStatsSurface:
    def test_stats_counters_cover_the_mutation_paths(self):
        db = fresh_db()
        db.add(Relation("U", ("x",), [(1,)]))
        service = QueryService(db, promote_after=1)
        chain = "Q(a, b, c) :- R(a, b), S(b, c)"
        service.count(chain)
        stats = service.stats()
        assert stats.static_builds == 1 and stats.dynamic_builds == 0
        service.insert("U", (2,))  # unreferenced: carried forward
        assert service.stats().carried_forward == 1
        service.insert("R", (9, 10))  # referenced: invalidates, churn +1
        assert service.stats().mutation_invalidations == 1
        service.count(chain)  # churn ≥ 1 → promoted dynamic build
        stats = service.stats()
        assert stats.promotions == 1 and stats.dynamic_builds == 1
        service.insert("R", (10, 10))  # absorbed in place now
        stats = service.stats()
        assert stats.in_place_updates == 1
        assert stats.hits + stats.misses == stats.hits + 2  # 2 builds

    def test_stats_reports_compactions_of_live_entries(self):
        query = "Q(a, b) :- R(a, b)"
        db = Database([Relation("R", ("a", "b"), [])])
        service = QueryService(db, dynamic=True)
        service.count(query)
        for i in range(100):
            service.insert("R", (i, 0))
        for i in range(100):
            service.delete("R", (i, 0))
        assert service.stats().compactions > 0

    def test_stats_compactions_ignore_foreign_entries_in_shared_cache(self):
        from repro.service.cache import IndexCache

        query = "Q(a, b) :- R(a, b)"
        cache = IndexCache(capacity=8)
        busy = QueryService(
            Database([Relation("R", ("a", "b"), [])]), cache=cache, dynamic=True
        )
        quiet = QueryService(
            Database([Relation("R", ("a", "b"), [(1, 1)])]), cache=cache, dynamic=True
        )
        busy.count(query)
        quiet.count(query)
        for i in range(100):
            busy.insert("R", (i, 0))
        for i in range(100):
            busy.delete("R", (i, 0))
        assert busy.stats().compactions > 0
        assert quiet.stats().compactions == 0  # not billed for busy's work

    def test_batch_range_clamps_to_current_count(self):
        service = QueryService(fresh_db(), dynamic=True)
        query = "Q(a, b, c) :- R(a, b), S(b, c)"
        n = service.count(query)
        assert service.batch_range(query, 0, n + 50) == \
            service.batch(query, range(n))
        assert service.batch_range(query, n, n + 5) == []
        assert service.batch_range(query, -3, 2) == service.batch(query, range(2))
