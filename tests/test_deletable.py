"""Tests for Lemma 5.3 — the deletable answer set."""

import random

import pytest

from repro import CQIndex, Database, DeletableAnswerSet, Relation, parse_cq


@pytest.fixture()
def answer_set():
    db = Database([
        Relation("R", ("a", "b"), [(i, i % 3) for i in range(9)]),
        Relation("S", ("b", "c"), [(i % 3, i) for i in range(6)]),
    ])
    index = CQIndex(parse_cq("Q(a, b, c) :- R(a, b), S(b, c)"), db)
    return index, DeletableAnswerSet(index, rng=random.Random(0))


class TestOperations:
    def test_count_starts_full(self, answer_set):
        index, deletable = answer_set
        assert deletable.count() == index.count

    def test_delete_shrinks_count(self, answer_set):
        index, deletable = answer_set
        answer = index.access(0)
        assert deletable.delete(answer)
        assert deletable.count() == index.count - 1
        assert not deletable.test(answer)

    def test_double_delete_is_noop(self, answer_set):
        index, deletable = answer_set
        answer = index.access(3)
        assert deletable.delete(answer)
        assert not deletable.delete(answer)
        assert deletable.count() == index.count - 1

    def test_delete_non_member(self, answer_set):
        __, deletable = answer_set
        assert not deletable.delete(("no", "such", "row"))

    def test_test_membership(self, answer_set):
        index, deletable = answer_set
        assert deletable.test(index.access(1))
        assert not deletable.test(("no", "such", "row"))

    def test_sample_avoids_deleted(self, answer_set):
        index, deletable = answer_set
        keep = {index.access(i) for i in range(index.count)}
        removed = index.access(5)
        deletable.delete(removed)
        keep.discard(removed)
        for __ in range(200):
            assert deletable.sample() in keep

    def test_sample_exhausted_raises(self, answer_set):
        index, deletable = answer_set
        for i in range(index.count):
            deletable.delete(index.access(i))
        assert deletable.count() == 0
        with pytest.raises(LookupError):
            deletable.sample()

    def test_delete_all_in_random_order(self, answer_set):
        """Stress the swap bookkeeping: delete in a scrambled order and
        check counts and membership at every step."""
        index, deletable = answer_set
        order = list(range(index.count))
        random.Random(42).shuffle(order)
        remaining = index.count
        for position in order:
            answer = index.access(position)
            assert deletable.test(answer)
            assert deletable.delete(answer)
            remaining -= 1
            assert deletable.count() == remaining
            assert not deletable.test(answer)

    def test_sample_uniform_over_survivors(self, answer_set):
        from collections import Counter

        index, deletable = answer_set
        for i in range(0, index.count, 2):
            deletable.delete(index.access(i))
        survivors = {index.access(i) for i in range(1, index.count, 2)}
        trials = 6000
        counts = Counter(deletable.sample() for __ in range(trials))
        assert set(counts) == survivors
        expected = trials / len(survivors)
        chi2 = sum((counts[s] - expected) ** 2 / expected for s in survivors)
        # dof = |survivors| - 1; generous 99.9% bound for ≤ 9 dof.
        assert chi2 < 30.0, f"chi2={chi2:.1f}"
