"""End-to-end integration: every algorithm against naive ground truth on
the full TPC-H workload, at a small scale."""

import random

import pytest

from repro import (
    CQIndex,
    MCUCQIndex,
    UnionRandomEnumerator,
    evaluate_cq,
    evaluate_ucq,
)
from repro.sampling import ExactWeightSampler, sample_distinct
from repro.tpch.queries import CQ_QUERIES, UCQ_QUERIES


@pytest.mark.parametrize("name", sorted(CQ_QUERIES))
def test_cq_index_complete_pipeline(name, tiny_tpch):
    query = CQ_QUERIES[name]()
    truth = evaluate_cq(query, tiny_tpch)
    index = CQIndex(query, tiny_tpch)

    # Counting.
    assert index.count == len(truth)

    # Access enumerates exactly the answer set, each position distinct.
    answers = [index.access(i) for i in range(index.count)]
    assert set(answers) == truth
    assert len(set(answers)) == len(answers)

    # Inverted access is the inverse of access.
    for position in range(0, index.count, max(1, index.count // 50)):
        assert index.inverted_access(answers[position]) == position

    # Ordered enumeration agrees with access order.
    assert list(index) == answers

    # Random-order enumeration is a permutation of the answers.
    permuted = list(index.random_order(random.Random(13)))
    assert sorted(permuted) == sorted(answers)


@pytest.mark.parametrize("name", sorted(UCQ_QUERIES))
def test_ucq_algorithms_complete_pipeline(name, tiny_tpch):
    ucq = UCQ_QUERIES[name]()
    truth = evaluate_ucq(ucq, tiny_tpch)

    # Theorem 5.4 (Algorithm 5).
    enumerator = UnionRandomEnumerator.for_indexes(
        [CQIndex(q, tiny_tpch) for q in ucq.queries], rng=random.Random(7)
    )
    random_out = list(enumerator)
    assert set(random_out) == truth
    assert len(random_out) == len(truth)

    # Theorem 5.5 (mc-UCQ random access) — all benchmark UCQs are aligned.
    index = MCUCQIndex(ucq, tiny_tpch)
    assert index.count == len(truth)
    accessed = [index.access(i) for i in range(index.count)]
    assert set(accessed) == truth
    assert len(set(accessed)) == len(accessed)
    assert list(index) == accessed

    shuffled = list(index.random_order(random.Random(21)))
    assert sorted(shuffled) == sorted(accessed)


def test_sampling_pipeline_matches_truth(tiny_tpch):
    query = CQ_QUERIES["Q0"]()
    truth = evaluate_cq(query, tiny_tpch)
    sampler = ExactWeightSampler(query, tiny_tpch, rng=random.Random(2))
    assert sampler.answer_count == len(truth)
    distinct = sample_distinct(sampler, len(truth))
    assert set(distinct) == truth


def test_member_and_intersection_orders_are_compatible(tiny_tpch):
    """The mc-UCQ prerequisite, verified directly: each intersection
    index's order is a subsequence of each member's order."""
    ucq = UCQ_QUERIES["QS7_or_QC7"]()
    index = MCUCQIndex(ucq, tiny_tpch)
    member = index.member_indexes[0]
    subset = index.intersection_indexes[(0, frozenset({1}))]
    member_rank = {answer: i for i, answer in enumerate(member)}
    ranks = [member_rank[answer] for answer in subset]
    assert all(answer in member_rank for answer in subset)
    assert ranks == sorted(ranks)
