"""Snapshot-isolated reads: published index versions never move.

Covers the full stack — treap copy-on-write (`order_tree`), the frozen
bucket store (`access_engine.SnapshotBucketStore`), forest snapshots
(`dynamic.IndexSnapshot`), union snapshots
(`union_access.UnionIndexSnapshot`), and the service/cursor read path
(pinning, stats counters, the legacy locked fallback).
"""

import random

import pytest

from repro import CQIndex, Database, DynamicCQIndex, QueryService, Relation, parse_cq, parse_ucq
from repro.core.access_engine import SnapshotBucketStore
from repro.core.order_tree import OrderedWeightTree
from repro.core.union_access import MCUCQIndex
from repro.service.cache import canonical_query_key

CHAIN = "Q(a, b, c) :- R(a, b), S(b, c)"
UNION = "Q(a, b, c) :- R(a, b), S(b, c) ; Q(a, b, c) :- R(a, b), T(b, c)"


def fresh_db():
    return Database([
        Relation("R", ("a", "b"), [(i, i % 3) for i in range(9)]),
        Relation("S", ("b", "c"), [(j, k) for j in range(3) for k in range(2)]),
    ])


def union_db():
    db = fresh_db()
    db.add(Relation("T", ("b", "c"), [(j, k + 1) for j in range(3) for k in range(2)]))
    return db


class TestTreeCopyOnWrite:
    def _build(self, rows):
        entries = [((r,), 1, 1) for r in sorted(rows)]
        tree, nodes = OrderedWeightTree.from_sorted(entries)
        return tree, {node.row: node for node in nodes}

    def test_snapshot_survives_set_weight_and_inserts(self):
        tree, rank = self._build(range(10))
        tree.on_clone = lambda node: rank.__setitem__(node.row, node)
        frozen = SnapshotBucketStore(tree.snapshot())
        before = list(frozen.iter_rows())
        assert frozen.total == 10
        rank[(3,)] = tree.set_weight(rank[(3,)], 5)
        tree.insert_row((99,), 2, 1)
        assert list(frozen.iter_rows()) == before
        assert frozen.total == 10
        assert tree.total == 16
        # The live handle map followed the path copies.
        assert rank[(3,)].weight == 5
        assert tree.prefix_of(rank[(9,)]) == 13

    def test_snapshot_survives_merge_rebuild_bulk_insert(self):
        tree, rank = self._build(range(0, 40, 2))
        tree.on_clone = lambda node: rank.__setitem__(node.row, node)
        frozen = SnapshotBucketStore(tree.snapshot())
        before = list(frozen.iter_rows())
        # A batch comparable to the tree size takes the O(n + k)
        # merge-rebuild path, which overwrites node pointers — snapshot
        # nodes must be cloned, not reused.
        tree.insert_sorted([((r,), 1, 1) for r in range(1, 40, 2)])
        assert list(frozen.iter_rows()) == before
        assert tree.total == 40
        assert [node.row for node in tree] == [(r,) for r in range(40)]
        # Handles still valid after the rebuild.
        rank[(0,)] = tree.set_weight(rank[(0,)], 7)
        assert tree.total == 46

    def test_frozen_store_locate_and_rank(self):
        tree, rank = self._build(range(6))
        tree.set_weight(rank[(2,)], 0)  # a dangling row: empty range
        frozen = SnapshotBucketStore(tree.snapshot())
        assert frozen.total == 5
        seen = [frozen.locate_run(offset)[0] for offset in range(frozen.total)]
        assert seen == [(0,), (1,), (3,), (4,), (5,)]
        assert frozen.rank_start((3,)) == 2
        assert frozen.rank_start((2,)) is None   # weight 0: dangling
        assert frozen.rank_start((42,)) is None  # absent
        with pytest.raises(IndexError):
            frozen.locate_run(5)
        assert len(frozen) == 6  # tombstones included, like the live store

    def test_empty_tree_snapshot(self):
        frozen = SnapshotBucketStore(OrderedWeightTree().snapshot())
        assert frozen.total == 0
        assert list(frozen.iter_rows()) == []
        assert frozen.rank_start((1,)) is None


class TestForestSnapshot:
    def test_pinned_snapshot_is_immutable_and_matches_static_build(self):
        db = fresh_db()
        query = parse_cq(CHAIN)
        dynamic = DynamicCQIndex(query, db)
        static = CQIndex(query, db)
        pinned = dynamic.snapshot
        want = list(static)
        assert list(pinned) == want
        assert pinned.count == static.count

        dynamic.insert("R", (100, 0))
        dynamic.delete("S", (0, 0))
        # The pinned version did not move; the new publication did.
        assert list(pinned) == want
        assert pinned.count == len(want)
        assert dynamic.snapshot is not pinned
        assert list(dynamic.snapshot) == list(dynamic)
        assert dynamic.snapshot.count == dynamic.count

    def test_snapshot_serving_surface_is_mutually_consistent(self):
        dynamic = DynamicCQIndex(parse_cq(CHAIN), fresh_db())
        dynamic.insert("R", (50, 1))
        snap = dynamic.snapshot
        n = snap.count
        answers = snap.batch(list(range(n)))
        assert [snap.access(i) for i in range(n)] == answers
        for position, answer in enumerate(answers):
            assert snap.inverted_access(answer) == position
            assert answer in snap
        assert snap.inverted_access((123, 456, 789)) is None
        assert sorted(snap.random_order(random.Random(3))) == sorted(answers)
        assert snap.sample_many(4, random.Random(7)) == \
            dynamic.sample_many(4, random.Random(7))
        snap.ensure_inverted_support()  # interface parity no-op

    def test_publish_is_incremental_but_always_current(self):
        dynamic = DynamicCQIndex(parse_cq(CHAIN), fresh_db())
        first = dynamic.publishes
        dynamic.insert("R", (60, 2))
        dynamic.insert("R", (61, 2))
        assert dynamic.publishes == first + 2
        # Untouched buckets share frozen views across versions: S was
        # never written, so its snapshot node is reused wholesale.
        assert list(dynamic.snapshot) == list(dynamic)


class TestUnionSnapshot:
    def test_dynamic_union_pins_whole_family(self):
        ucq = parse_ucq(UNION)
        db = union_db()
        dynamic = MCUCQIndex(ucq, db, dynamic=True)
        static = MCUCQIndex(ucq, db)
        pinned = dynamic.snapshot
        want = list(static)
        assert list(pinned) == want and pinned.count == static.count

        dynamic.insert("S", (0, 99))
        dynamic.delete("T", (1, 1))
        assert list(pinned) == want and pinned.count == len(want)
        now = dynamic.snapshot
        assert now is not pinned
        assert list(now) == list(dynamic) and now.count == dynamic.count
        assert now.batch(list(range(now.count))) == list(now)
        assert list(now.random_order(random.Random(2))) == \
            list(dynamic.random_order(random.Random(2)))

    def test_static_union_publishes_nothing(self):
        static = MCUCQIndex(parse_ucq(UNION), union_db())
        assert static.snapshot is None
        assert static.publishes == 0


class TestServiceSnapshotReads:
    def test_cursor_pins_one_version_until_staleness(self):
        service = QueryService(fresh_db(), dynamic=True)
        cursor = service.cursor(CHAIN)
        before = cursor.batch(range(cursor.count))
        pinned = cursor.pinned
        service.insert("R", (200, 0))
        # The pinned view still serves the old version...
        assert list(pinned) == before
        # ...while the cursor (reresolve policy) re-pins the new one.
        assert cursor.count == len(before) + 2
        assert cursor.pinned is not pinned

    def test_inflight_streams_survive_concurrent_writes(self):
        """random_order / iteration pin their snapshot: a write landing
        mid-stream can no longer corrupt the shuffle (the old documented
        'do not mutate while consuming' hazard is gone)."""
        service = QueryService(fresh_db(), dynamic=True)
        cursor = service.cursor(CHAIN)
        want = sorted(cursor.batch(range(cursor.count)))
        stream = cursor.random_order(random.Random(11))
        got = [next(stream) for __ in range(3)]
        service.insert("R", (300, 1))
        service.delete("S", (0, 1))
        got.extend(stream)
        assert sorted(got) == want

        plain = iter(service.cursor(CHAIN))
        head = [next(plain)]
        service.insert("R", (301, 2))
        head.extend(plain)
        # The enumeration is exactly the version pinned at the first draw.
        assert len(head) == len(set(head))

    def test_stats_expose_snapshot_read_and_publish_counters(self):
        service = QueryService(fresh_db(), dynamic=True)
        service.count(CHAIN)
        service.page(CHAIN, 0, page_size=4)
        service.insert("R", (400, 1))
        service.count(CHAIN)
        stats = service.stats()
        assert stats.snapshot_reads >= 3
        assert stats.locked_reads == 0
        assert stats.snapshot_publishes >= 2  # initial publish + 1 write
        # The CLI surfaces stats via _asdict(); the new counters ride along.
        assert {"snapshot_reads", "locked_reads", "snapshot_publishes"} <= \
            set(stats._asdict())

    def test_mid_apply_behind_read_is_transient_not_pinned(self):
        """A read landing in the bump-to-rekey window serves the pre-batch
        snapshot wait-free — but must NOT pin it: the cursor already
        reports the new version, and pinning would freeze it one version
        behind forever (regression: reresolve contract violation)."""
        service = QueryService(fresh_db(), dynamic=True)
        n0 = service.count(CHAIN)
        cursor = service.cursor(CHAIN)
        # Simulate the mid-apply window: version bumped, entry still
        # keyed (with its published snapshot) at the previous version.
        service.database.version += 1
        service._absorbing = True
        try:
            assert cursor.count == n0      # the pre-batch snapshot
            assert cursor._pinned is None  # transient: nothing pinned
        finally:
            service._absorbing = False
        # Once the writer finishes, the very next read serves fresh data.
        service.insert("R", (901, 0))
        assert cursor.count == n0 + 2

    def test_cold_resolve_waits_out_an_in_flight_apply(self):
        """A cold build must not run concurrently with a writer's apply:
        Database.apply swaps relation data before bumping the version, so
        a build in that sliver would be cached at the pre-batch version
        and then double-patched by the writer's walk. The resolver waits
        for the absorb window to close instead."""
        import threading

        service = QueryService(fresh_db(), dynamic=True)
        service._absorbing = True  # an apply is (simulated to be) in flight
        timer = threading.Timer(
            0.05, lambda: setattr(service, "_absorbing", False)
        )
        timer.start()
        try:
            assert service.count(CHAIN) == 18  # resolved after the window
        finally:
            timer.cancel()
        assert service.stats().dynamic_builds == 1

    def test_out_of_band_bump_still_rebuilds_instead_of_serving_stale(self):
        """The mid-apply behind-version read path must not leak into
        out-of-band mutations: a version bump the service never saw
        leaves a lingering entry at version-1, and a read must rebuild
        fresh, not serve that entry's (stale) snapshot."""
        db = fresh_db()
        service = QueryService(db, dynamic=True)
        before = service.count(CHAIN)
        db.insert("R", (900, 0))  # out-of-band: bypasses the service
        assert service.count(CHAIN) == before + 2

    def test_foreign_update_capable_entry_falls_back_to_locked_reads(self):
        """Duck-typed entries that claim supports_updates but publish no
        snapshot still get coherent (locked) reads — and the fallback is
        visible in stats.locked_reads."""

        class ForeignIndex:
            supports_updates = True
            count = 1

            def access(self, position):
                return ("foreign",)

        service = QueryService(fresh_db())
        query = service.resolve(CHAIN)
        key = (service.database, service.database.version,
               canonical_query_key(query))
        service._cache.get_or_build(key, ForeignIndex)
        assert service.get(CHAIN, 0) == ("foreign",)
        stats = service.stats()
        assert stats.locked_reads == 1
        assert stats.snapshot_reads == 0
        # No immutable view of a snapshot-less entry exists to hand out.
        with pytest.raises(TypeError):
            service.cursor(CHAIN).pinned


class TestDeltaAwarePromotionCredit:
    def test_one_burst_promotes_a_write_heavy_query(self):
        """A single invalidating batch now credits churn per relevant
        effective op, so the threshold is crossed in one burst instead of
        promote_after separate mutations."""
        service = QueryService(fresh_db(), promote_after=3)
        service.count(CHAIN)  # static build
        with service.transaction() as txn:
            for i in range(5):
                txn.insert("R", (500 + i, i % 3))
        assert service.stats().promotions == 0
        service.count(CHAIN)  # next build: promoted by one 5-op burst
        stats = service.stats()
        assert stats.promotions == 1 and stats.dynamic_builds == 1

    def test_irrelevant_ops_do_not_credit_the_query(self):
        """Only effective ops over the query's own relations count: a
        burst over an unrelated relation carries the entry forward and
        leaves its churn pressure untouched."""
        db = fresh_db()
        db.add(Relation("Z", ("z",), [(0,)]))
        service = QueryService(db, promote_after=3)
        service.count(CHAIN)
        with service.transaction() as txn:
            for i in range(10):
                txn.insert("Z", (100 + i,))
        service.count(CHAIN)
        stats = service.stats()
        assert stats.carried_forward == 1
        assert stats.promotions == 0 and stats.dynamic_builds == 0

    def test_single_fact_mutations_keep_the_old_threshold(self):
        service = QueryService(fresh_db(), promote_after=3)
        for i in range(3):
            service.count(CHAIN)
            service.insert("R", (600 + i, i % 3))
        service.count(CHAIN)
        stats = service.stats()
        assert stats.promotions == 1
