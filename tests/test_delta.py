"""Tests for the Delta write batch and Database.apply."""

import pytest

from repro import (
    AppliedDelta,
    Database,
    Delta,
    DeltaError,
    QueryService,
    Relation,
    ReproError,
)
from repro.database.relation import RelationError


def fresh_db() -> Database:
    return Database([
        Relation("R", ("a", "b"), [(1, 10), (2, 20), (3, 30)]),
        Relation("S", ("b", "c"), [(10, 100), (10, 101), (20, 200), (30, 300)]),
    ])


class TestDeltaNormalization:
    def test_last_op_wins_per_fact(self):
        delta = Delta()
        delta.insert("R", (1, 2)).delete("R", (1, 2)).insert("R", (3, 4))
        assert delta.ops() == [("delete", "R", (1, 2)), ("insert", "R", (3, 4))]
        assert len(delta) == 2

    def test_duplicate_ops_dedupe_keeping_first_touch_order(self):
        delta = Delta([
            ("insert", "R", (1, 2)),
            ("insert", "S", (5, 6)),
            ("insert", "R", (1, 2)),
        ])
        assert delta.ops() == [("insert", "R", (1, 2)), ("insert", "S", (5, 6))]

    def test_relations_len_bool(self):
        delta = Delta()
        assert not delta and len(delta) == 0
        delta.insert("R", (1, 2)).delete("S", (3, 4))
        assert delta and delta.relations() == {"R", "S"}
        assert "R" in repr(delta) and "S" in repr(delta)

    def test_rows_are_normalized_to_tuples(self):
        delta = Delta().insert("R", [1, 2])
        assert delta.ops() == [("insert", "R", (1, 2))]


class TestDeltaValidation:
    def test_wrong_arity_rejected_up_front(self):
        delta = Delta(database=fresh_db())
        with pytest.raises(DeltaError, match="arity 3, expected 2"):
            delta.insert("R", (1, 2, 3))
        assert len(delta) == 0  # nothing recorded

    def test_unknown_relation_rejected_up_front(self):
        with pytest.raises(DeltaError, match="no relation 'Z'"):
            Delta(database=fresh_db()).delete("Z", (1,))

    def test_unknown_op_rejected(self):
        with pytest.raises(DeltaError, match="unknown delta op"):
            Delta().add("upsert", "R", (1, 2))

    def test_error_hierarchy(self):
        # DeltaError is a schema violation: catchable as RelationError,
        # as the library-wide ReproError, and as plain ValueError.
        error = DeltaError("x")
        assert isinstance(error, RelationError)
        assert isinstance(error, ReproError)
        assert isinstance(error, ValueError)

    def test_bound_delta_revalidates_against_schema_drift(self):
        """Regression: a delta recorded before a replace() that changed
        the relation's arity must be rejected at apply time — never
        silently inserted past Relation.copy_from's unchecked fast path."""
        db = fresh_db()
        delta = Delta(database=db).insert("R", (5, 50))
        db.replace(Relation("R", ("a", "b", "c"), [(1, 10, 100)]))
        with pytest.raises(DeltaError, match="arity 2, expected 3"):
            db.apply(delta)
        assert db.relation("R").rows == [(1, 10, 100)]  # untouched

    def test_unbound_delta_validates_at_apply(self):
        db = fresh_db()
        before = [tuple(r.rows) for r in db]
        with pytest.raises(DeltaError, match="arity"):
            db.apply([("insert", "R", (1, 2, 3)), ("insert", "R", (9, 90))])
        # Validation happens before anything mutates: atomic rejection.
        assert [tuple(r.rows) for r in db] == before
        assert db.version == fresh_db().version


class TestDatabaseApply:
    def test_single_version_bump_for_a_whole_batch(self):
        db = fresh_db()
        version = db.version
        result = db.apply(
            Delta(database=db)
            .insert("R", (4, 40))
            .insert("S", (40, 400))
            .delete("R", (1, 10))
        )
        assert db.version == version + 1
        assert isinstance(result, AppliedDelta)
        assert result.changed and result.inserted == 2 and result.deleted == 1
        assert (4, 40) in db.relation("R").rows
        assert (1, 10) not in db.relation("R").rows

    def test_noop_batch_does_not_bump_version(self):
        db = fresh_db()
        version = db.version
        result = db.apply([
            ("insert", "R", (1, 10)),      # already present
            ("delete", "S", (99, 99)),     # absent
        ])
        assert db.version == version
        assert not result.changed
        assert result.noops == 2
        assert result.by_relation["R"]["noop_inserts"] == 1
        assert result.by_relation["S"]["noop_deletes"] == 1

    def test_effective_delta_carries_exactly_the_applied_ops(self):
        db = fresh_db()
        result = db.apply([
            ("insert", "R", (7, 70)),
            ("insert", "R", (1, 10)),      # no-op
            ("delete", "S", (10, 100)),
            ("insert", "S", (5, 50)),
            ("delete", "S", (5, 50)),      # cancels the insert → no-op delete
        ])
        assert result.effective.ops() == [
            ("insert", "R", (7, 70)),
            ("delete", "S", (10, 100)),
        ]
        assert result.by_relation["R"] == {
            "inserted": 1, "deleted": 0, "noop_inserts": 1, "noop_deletes": 0,
        }

    def test_insert_then_delete_of_existing_fact_nets_to_delete(self):
        # Last-op-wins must match sequential semantics: the fact existed,
        # so insert (no-op) then delete removes it.
        db = fresh_db()
        result = db.apply([("insert", "R", (1, 10)), ("delete", "R", (1, 10))])
        assert (1, 10) not in db.relation("R").rows
        assert result.deleted == 1

    def test_batch_matches_fact_by_fact_application(self):
        ops = [
            ("insert", "R", (4, 40)),
            ("delete", "R", (4, 40)),
            ("delete", "R", (2, 20)),
            ("insert", "S", (40, 400)),
            ("insert", "S", (40, 400)),
            ("delete", "S", (30, 300)),
        ]
        batched, sequential = fresh_db(), fresh_db()
        batched.apply(ops)
        for op, relation, row in ops:
            getattr(sequential, op)(relation, row)
        for name in ("R", "S"):
            assert batched.relation(name).row_set() == \
                sequential.relation(name).row_set()


class TestServiceApply:
    CHAIN = "Q(a, b, c) :- R(a, b), S(b, c)"

    def test_batched_apply_counts_and_agreement(self):
        hot = QueryService(fresh_db(), dynamic=True)
        cold = QueryService(fresh_db(), dynamic=False)
        for service in (hot, cold):
            service.count(self.CHAIN)
        delta_ops = [
            ("insert", "R", (4, 10)),
            ("delete", "S", (20, 200)),
            ("insert", "S", (30, 301)),
        ]
        hot.apply(delta_ops)
        cold.apply(delta_ops)
        n = hot.count(self.CHAIN)
        assert n == cold.count(self.CHAIN)
        assert hot.batch(self.CHAIN, range(n)) == cold.batch(self.CHAIN, range(n))
        assert hot.stats().batched_updates == 1
        assert hot.stats().batched_update_ops == 3
        assert hot.stats().mutation_invalidations == 0
        assert cold.stats().mutation_invalidations == 1  # one per batch

    def test_batch_churn_counts_one_event_per_batch(self):
        service = QueryService(fresh_db(), promote_after=2)
        for __ in range(2):
            service.count(self.CHAIN)
            service.apply([
                ("insert", "R", (100 + service.database.version, 10)),
                ("insert", "R", (200 + service.database.version, 10)),
            ])
        # Two batches → two churn events → next build promotes.
        from repro import DynamicCQIndex
        assert isinstance(service.index(self.CHAIN), DynamicCQIndex)

    def test_unreferenced_relations_carry_forward_across_batch(self):
        db = fresh_db()
        db.add(Relation("T", ("x",), [(1,)]))
        service = QueryService(db)
        entry = service.index(self.CHAIN)
        service.apply([("insert", "T", (2,)), ("insert", "T", (3,))])
        assert service.index(self.CHAIN) is entry
        assert service.stats().carried_forward == 1

    def test_empty_and_noop_deltas_leave_cache_warm(self):
        service = QueryService(fresh_db())
        service.count(self.CHAIN)
        result = service.apply([("insert", "R", (1, 10))])  # no-op
        assert not result.changed
        assert service.apply([]).changed is False
        service.count(self.CHAIN)
        assert service.cache_info().hits == 1

    def test_update_profile_feeds_the_tuner(self):
        service = QueryService(fresh_db(), dynamic=True)
        service.count(self.CHAIN)
        service.insert("R", (4, 10))
        service.apply([("insert", "R", (5, 10)), ("delete", "R", (5, 10)),
                       ("insert", "R", (6, 10)), ("insert", "R", (7, 10))])
        profile = list(service.update_profile().values())
        assert profile == [{"single_fact": 1, "batched": 1, "batched_ops": 2}]
