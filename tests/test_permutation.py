"""Tests for Theorem 3.7 — REnum from random access, including a
statistical uniformity check over whole permutations of the answer set."""

import random
from collections import Counter

import pytest

from repro import CQIndex, Database, Relation, parse_cq
from repro.core.permutation import (
    RandomPermutationEnumerator,
    count_by_binary_search,
    random_order,
)


@pytest.fixture()
def small_index():
    db = Database([
        Relation("R", ("a", "b"), [(1, 0), (2, 0)]),
        Relation("S", ("b", "c"), [(0, "x"), (0, "y")]),
    ])
    return CQIndex(parse_cq("Q(a, b, c) :- R(a, b), S(b, c)"), db)


class TestCountByBinarySearch:
    def test_matches_known_count(self, small_index):
        assert count_by_binary_search(small_index.access) == small_index.count

    def test_zero(self):
        def access(i):
            raise IndexError

        assert count_by_binary_search(access) == 0

    @pytest.mark.parametrize("n", [1, 2, 3, 7, 8, 9, 100, 1023, 1024, 1025])
    def test_exact_for_many_sizes(self, n):
        def access(i):
            if not 0 <= i < n:
                raise IndexError
            return i

        assert count_by_binary_search(access) == n

    def test_probe_budget_is_logarithmic(self):
        n = 1_000_000
        probes = 0

        def access(i):
            nonlocal probes
            probes += 1
            if not 0 <= i < n:
                raise IndexError
            return i

        assert count_by_binary_search(access) == n
        assert probes <= 2 * 21 + 2  # doubling + binary search, each ≤ log2(2n)


class TestRandomPermutation:
    def test_emits_each_answer_once(self, small_index):
        out = list(RandomPermutationEnumerator(small_index, rng=random.Random(0)))
        assert sorted(out) == sorted(small_index)

    def test_remaining(self, small_index):
        enum = RandomPermutationEnumerator(small_index, rng=random.Random(0))
        next(enum)
        assert enum.remaining() == small_index.count - 1

    def test_works_without_count_attribute(self, small_index):
        class AccessOnly:
            def __init__(self, inner):
                self.access = inner.access

        out = list(RandomPermutationEnumerator(AccessOnly(small_index), rng=random.Random(1)))
        assert sorted(out) == sorted(small_index)

    def test_permutation_uniformity(self, small_index):
        """All 4! orderings of the 4 answers should be equally likely."""
        trials = 12_000
        rng = random.Random(99)
        counts = Counter(
            tuple(random_order(small_index, rng=rng)) for __ in range(trials)
        )
        assert len(counts) == 24
        expected = trials / 24
        chi2 = sum((c - expected) ** 2 / expected for c in counts.values())
        assert chi2 < 49.7, f"chi2={chi2:.1f}"  # 23 dof, 99.9% quantile
