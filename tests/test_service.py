"""Tests for the serving layer: IndexCache and QueryService.

Covers the PR's cache satellites: LRU eviction order under capacity
pressure, invalidation after mutations (checked against a
``DynamicCQIndex`` fed the same update stream), and a chi-square check
that cached-index sampling stays uniform at the tolerance used by
``repro.experiments.uniformity`` elsewhere in the suite.
"""

import random

import pytest

from repro import (
    CQIndex,
    Database,
    DynamicCQIndex,
    IndexCache,
    QueryService,
    Relation,
    parse_cq,
    parse_ucq,
)
from repro.database.relation import RelationError
from repro.experiments.uniformity import chi_square_uniform
from repro.service.cache import canonical_query_key


def fresh_db() -> Database:
    return Database([
        Relation("R", ("a", "b"), [(1, 10), (2, 20), (3, 30)]),
        Relation("S", ("b", "c"), [(10, 100), (10, 101), (20, 200), (30, 300)]),
    ])


CHAIN = "Q(a, b, c) :- R(a, b), S(b, c)"


class TestCanonicalQueryKey:
    def test_insensitive_to_name_and_whitespace(self):
        key1 = canonical_query_key(parse_cq("Q(a, b) :- R(a, b)"))
        key2 = canonical_query_key(parse_cq("Other(a,b)  :-  R(a , b)"))
        assert key1 == key2

    def test_sensitive_to_structure(self):
        base = canonical_query_key(parse_cq("Q(a, b) :- R(a, b)"))
        assert base != canonical_query_key(parse_cq("Q(b, a) :- R(a, b)"))
        assert base != canonical_query_key(parse_cq("Q(a, b) :- R(b, a)"))
        assert base != canonical_query_key(parse_cq("Q(a, b) :- R(a, b), R(b, a)"))

    def test_variable_names_matter(self):
        # Alpha-renaming can change bucket sort order (columns sort by
        # name), so equivalent-but-renamed queries must hash apart.
        key1 = canonical_query_key(parse_cq("Q(x, y) :- R(x, y)"))
        key2 = canonical_query_key(parse_cq("Q(y, x) :- R(y, x)"))
        assert key1 != key2

    def test_constants_distinguish(self):
        key1 = canonical_query_key(parse_cq("Q(a) :- R(a, 1)"))
        key2 = canonical_query_key(parse_cq("Q(a) :- R(a, 2)"))
        assert key1 != key2

    def test_ucq_keys(self):
        u = parse_ucq("Q(x, y) :- R(x, y) ; Q(x, y) :- S(x, y)")
        assert canonical_query_key(u)[0] == "ucq"
        with pytest.raises(TypeError):
            canonical_query_key("not a query object")


class TestIndexCacheLRU:
    def test_eviction_order_under_capacity_pressure(self):
        cache = IndexCache(capacity=2)
        cache.get_or_build("a", lambda: "A")
        cache.get_or_build("b", lambda: "B")
        # Touch "a" so "b" becomes least recently used.
        cache.get_or_build("a", lambda: "never")
        cache.get_or_build("c", lambda: "C")
        assert "b" not in cache
        assert cache.keys() == ["a", "c"]
        assert cache.evictions == 1

    def test_hit_returns_cached_object(self):
        cache = IndexCache(capacity=4)
        built = []
        entry = cache.get_or_build("k", lambda: built.append(1) or object())
        again = cache.get_or_build("k", lambda: built.append(1) or object())
        assert entry is again
        assert built == [1]
        assert (cache.hits, cache.misses) == (1, 1)

    def test_invalidate_predicate_and_clear(self):
        cache = IndexCache(capacity=8)
        for key in ("x1", "x2", "y1"):
            cache.get_or_build(key, lambda: key)
        assert cache.invalidate(lambda k: k.startswith("x")) == 2
        assert cache.keys() == ["y1"]
        assert cache.invalidate() == 1
        assert len(cache) == 0
        assert cache.invalidations == 3

    def test_rejects_nonpositive_capacity(self):
        with pytest.raises(ValueError):
            IndexCache(capacity=0)

    @pytest.mark.slow
    def test_stress_many_queries_cycling_under_pressure(self):
        """Regression: a long mixed workload never serves stale answers and
        never exceeds capacity."""
        db = fresh_db()
        cache = IndexCache(capacity=3)
        service = QueryService(db, cache=cache)
        queries = [
            CHAIN,
            "Q(a) :- R(a, b), S(b, c)",
            "Q(a, b) :- R(a, b)",
            "Q(b, c) :- S(b, c)",
            "Q(a, b) :- R(a, b), S(b, c), S(b, d)",
        ]
        rng = random.Random(7)
        for step in range(300):
            q = rng.choice(queries)
            if rng.random() < 0.1:
                row = (rng.randrange(50) + 100, rng.randrange(5) * 10 + 10)
                service.insert("R", (row[0], row[1]))
            expected = CQIndex(parse_cq(q), db)
            assert service.count(q) == expected.count
            if expected.count:
                position = rng.randrange(expected.count)
                assert service.get(q, position) == expected.access(position)
            assert len(cache) <= 3


class TestQueryServiceCaching:
    def test_repeat_calls_hit_the_cache(self):
        service = QueryService(fresh_db())
        first = service.index(CHAIN)
        again = service.index(CHAIN)
        assert first is again
        info = service.cache_info()
        assert info.hits == 1 and info.misses == 1

    def test_batch_page_sample_agree_with_index(self):
        service = QueryService(fresh_db())
        index = service.index(CHAIN)
        positions = [3, 0, 3, 1]
        assert service.batch(CHAIN, positions) == [index.access(i) for i in positions]
        assert service.page(CHAIN, 1, page_size=2) == index.batch([2, 3])
        assert service.sample(CHAIN, 2, random.Random(5)) == index.sample_many(
            2, random.Random(5)
        )

    def test_ucq_queries_are_served(self):
        db = Database([
            Relation("R", ("x", "y"), [(1, 2), (3, 4)]),
            Relation("T", ("x", "y"), [(3, 4), (5, 6)]),
        ])
        service = QueryService(db)
        u = parse_ucq("Q(x, y) :- R(x, y) ; Q(x, y) :- T(x, y)")
        assert service.count(u) == 3
        assert sorted(service.batch(u, range(3))) == [(1, 2), (3, 4), (5, 6)]

    def test_online_mean_uses_cached_index(self):
        service = QueryService(fresh_db())
        estimates = list(
            service.online_mean(CHAIN, lambda t: t[2], rng=random.Random(3))
        )
        assert estimates[-1].seen == service.count(CHAIN)
        truth = sum(t[2] for t in service.batch(CHAIN, range(service.count(CHAIN))))
        assert estimates[-1].mean == pytest.approx(truth / service.count(CHAIN))
        assert service.cache_info().misses == 1


class TestInvalidationOnMutation:
    def test_insert_and_delete_refresh_results(self):
        service = QueryService(fresh_db())
        assert service.count(CHAIN) == 4
        assert service.insert("S", (30, 301))
        assert service.count(CHAIN) == 5
        assert service.delete("R", (1, 10))
        assert service.count(CHAIN) == 3

    def test_noop_mutations_keep_the_cache_warm(self):
        service = QueryService(fresh_db())
        service.count(CHAIN)
        version = service.database.version
        assert not service.insert("R", (1, 10))       # already present
        assert not service.delete("R", (99, 99))      # absent
        assert service.database.version == version
        service.count(CHAIN)
        assert service.cache_info().hits == 1

    def test_insert_arity_is_checked(self):
        service = QueryService(fresh_db())
        with pytest.raises(RelationError):
            service.insert("R", (1, 2, 3))

    def test_matches_dynamic_index_under_update_stream(self):
        """The cache's rebuild-on-mutation must agree with the incremental
        DynamicCQIndex fed the same inserts/deletes (full CQ, so both
        apply)."""
        full = "Q(a, b, c) :- R(a, b), S(b, c)"
        db = fresh_db()
        service = QueryService(db)
        dynamic = DynamicCQIndex(parse_cq(full), fresh_db())
        rng = random.Random(11)
        for step in range(120):
            relation = rng.choice(["R", "S"])
            arity2 = (rng.randrange(4), rng.randrange(4) * 10 + 10) \
                if relation == "R" else (rng.randrange(4) * 10 + 10, rng.randrange(400))
            if rng.random() < 0.6:
                changed = service.insert(relation, arity2)
                if changed:
                    dynamic.insert(relation, arity2)
            else:
                changed = service.delete(relation, arity2)
                if changed:
                    dynamic.delete(relation, arity2)
            assert service.count(full) == dynamic.count
        assert sorted(service.batch(full, range(service.count(full)))) == sorted(dynamic)


class TestCachedSamplingUniformity:
    @pytest.mark.slow
    def test_first_draw_of_cached_sample_many_is_uniform(self):
        """Chi-square audit at the tolerance the uniformity experiments
        use (significance 0.001): the first element of ``sample_many``
        from a *cached* index must be uniform over the answer set — the
        cache must not freeze any sampling state, only the structure."""
        service = QueryService(fresh_db())
        n = service.count(CHAIN)
        universe = service.batch(CHAIN, range(n))
        counts = {answer: 0 for answer in universe}
        trials = 4000
        for seed in range(trials):
            first = service.sample(CHAIN, 1, random.Random(seed))[0]
            counts[first] += 1
        result = chi_square_uniform([counts[u] for u in universe])
        assert result.consistent_with_uniform(significance=0.001)
        # Every draw came through the one cached build.
        assert service.cache_info().misses == 1
