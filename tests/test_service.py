"""Tests for the serving layer: IndexCache and QueryService.

Covers the PR's cache satellites: LRU eviction order under capacity
pressure, invalidation after mutations (checked against a
``DynamicCQIndex`` fed the same update stream), and a chi-square check
that cached-index sampling stays uniform at the tolerance used by
``repro.experiments.uniformity`` elsewhere in the suite.
"""

import random

import pytest

from repro import (
    CQIndex,
    Database,
    DynamicCQIndex,
    IndexCache,
    QueryService,
    Relation,
    parse_cq,
    parse_ucq,
)
from repro.database.relation import RelationError
from repro.experiments.uniformity import chi_square_uniform
from repro.service.cache import canonical_query_key


def fresh_db() -> Database:
    return Database([
        Relation("R", ("a", "b"), [(1, 10), (2, 20), (3, 30)]),
        Relation("S", ("b", "c"), [(10, 100), (10, 101), (20, 200), (30, 300)]),
    ])


CHAIN = "Q(a, b, c) :- R(a, b), S(b, c)"


class TestCanonicalQueryKey:
    def test_insensitive_to_name_and_whitespace(self):
        key1 = canonical_query_key(parse_cq("Q(a, b) :- R(a, b)"))
        key2 = canonical_query_key(parse_cq("Other(a,b)  :-  R(a , b)"))
        assert key1 == key2

    def test_sensitive_to_structure(self):
        base = canonical_query_key(parse_cq("Q(a, b) :- R(a, b)"))
        assert base != canonical_query_key(parse_cq("Q(b, a) :- R(a, b)"))
        assert base != canonical_query_key(parse_cq("Q(a, b) :- R(b, a)"))
        assert base != canonical_query_key(parse_cq("Q(a, b) :- R(a, b), R(b, a)"))

    def test_variable_names_matter(self):
        # Alpha-renaming can change bucket sort order (columns sort by
        # name), so equivalent-but-renamed queries must hash apart.
        key1 = canonical_query_key(parse_cq("Q(x, y) :- R(x, y)"))
        key2 = canonical_query_key(parse_cq("Q(y, x) :- R(y, x)"))
        assert key1 != key2

    def test_constants_distinguish(self):
        key1 = canonical_query_key(parse_cq("Q(a) :- R(a, 1)"))
        key2 = canonical_query_key(parse_cq("Q(a) :- R(a, 2)"))
        assert key1 != key2

    def test_ucq_keys(self):
        u = parse_ucq("Q(x, y) :- R(x, y) ; Q(x, y) :- S(x, y)")
        assert canonical_query_key(u)[0] == "ucq"
        with pytest.raises(TypeError):
            canonical_query_key("not a query object")


class TestIndexCacheLRU:
    def test_eviction_order_under_capacity_pressure(self):
        cache = IndexCache(capacity=2)
        cache.get_or_build("a", lambda: "A")
        cache.get_or_build("b", lambda: "B")
        # Touch "a" so "b" becomes least recently used.
        cache.get_or_build("a", lambda: "never")
        cache.get_or_build("c", lambda: "C")
        assert "b" not in cache
        assert cache.keys() == ["a", "c"]
        assert cache.evictions == 1

    def test_hit_returns_cached_object(self):
        cache = IndexCache(capacity=4)
        built = []
        entry = cache.get_or_build("k", lambda: built.append(1) or object())
        again = cache.get_or_build("k", lambda: built.append(1) or object())
        assert entry is again
        assert built == [1]
        assert (cache.hits, cache.misses) == (1, 1)

    def test_invalidate_predicate_and_clear(self):
        cache = IndexCache(capacity=8)
        for key in ("x1", "x2", "y1"):
            cache.get_or_build(key, lambda: key)
        assert cache.invalidate(lambda k: k.startswith("x")) == 2
        assert cache.keys() == ["y1"]
        assert cache.invalidate() == 1
        assert len(cache) == 0
        assert cache.invalidations == 3

    def test_rejects_nonpositive_capacity(self):
        with pytest.raises(ValueError):
            IndexCache(capacity=0)

    def test_peek_has_no_side_effects(self):
        cache = IndexCache(capacity=4)
        cache.get_or_build("a", lambda: "A")
        cache.get_or_build("b", lambda: "B")
        assert cache.peek("a") == "A"
        assert cache.peek("missing") is None
        assert cache.keys() == ["a", "b"]  # LRU order untouched
        assert (cache.hits, cache.misses) == (0, 2)

    def test_discard_counts_as_invalidation(self):
        cache = IndexCache(capacity=4)
        cache.get_or_build("a", lambda: "A")
        assert cache.discard("a")
        assert not cache.discard("a")
        assert "a" not in cache
        assert cache.invalidations == 1

    def test_rekey_moves_entry_and_counts_update(self):
        cache = IndexCache(capacity=4)
        cache.get_or_build("old", lambda: "X")
        cache.get_or_build("other", lambda: "Y")
        assert cache.rekey("old", "new")
        assert not cache.rekey("old", "newer")  # already moved
        assert cache.peek("new") == "X" and "old" not in cache
        assert cache.keys()[-1] == "new"  # re-keyed entry is MRU
        assert (cache.updates, cache.invalidations) == (1, 0)
        assert cache.info().updates == 1

    @pytest.mark.slow
    def test_stress_many_queries_cycling_under_pressure(self):
        """Regression: a long mixed workload never serves stale answers and
        never exceeds capacity.

        Under write pressure the service may promote hot full queries to
        dynamic indexes; their order-maintained buckets enumerate exactly
        like a fresh static build, so positions are checked against one.
        """
        db = fresh_db()
        cache = IndexCache(capacity=3)
        service = QueryService(db, cache=cache)
        queries = [
            CHAIN,
            "Q(a) :- R(a, b), S(b, c)",
            "Q(a, b) :- R(a, b)",
            "Q(b, c) :- S(b, c)",
            "Q(a, b) :- R(a, b), S(b, c), S(b, d)",
        ]
        rng = random.Random(7)
        for step in range(300):
            q = rng.choice(queries)
            if rng.random() < 0.1:
                row = (rng.randrange(50) + 100, rng.randrange(5) * 10 + 10)
                service.insert("R", (row[0], row[1]))
            expected = CQIndex(parse_cq(q), db)
            assert service.count(q) == expected.count
            if expected.count:
                position = rng.randrange(expected.count)
                answer = service.get(q, position)
                assert answer == expected.access(position)
                assert service.position_of(q, answer) == position
            assert len(cache) <= 3
            assert service.batch(q, range(service.count(q))) == \
                expected.batch(range(expected.count))


class TestQueryServiceCaching:
    def test_repeat_calls_hit_the_cache(self):
        service = QueryService(fresh_db())
        first = service.index(CHAIN)
        again = service.index(CHAIN)
        assert first is again
        info = service.cache_info()
        assert info.hits == 1 and info.misses == 1

    def test_batch_page_sample_agree_with_index(self):
        service = QueryService(fresh_db())
        index = service.index(CHAIN)
        positions = [3, 0, 3, 1]
        assert service.batch(CHAIN, positions) == [index.access(i) for i in positions]
        assert service.page(CHAIN, 1, page_size=2) == index.batch([2, 3])
        assert service.sample(CHAIN, 2, random.Random(5)) == index.sample_many(
            2, random.Random(5)
        )

    def test_ucq_queries_are_served(self):
        db = Database([
            Relation("R", ("x", "y"), [(1, 2), (3, 4)]),
            Relation("T", ("x", "y"), [(3, 4), (5, 6)]),
        ])
        service = QueryService(db)
        u = parse_ucq("Q(x, y) :- R(x, y) ; Q(x, y) :- T(x, y)")
        assert service.count(u) == 3
        assert sorted(service.batch(u, range(3))) == [(1, 2), (3, 4), (5, 6)]

    def test_online_mean_uses_cached_index(self):
        service = QueryService(fresh_db())
        estimates = list(
            service.online_mean(CHAIN, lambda t: t[2], rng=random.Random(3))
        )
        assert estimates[-1].seen == service.count(CHAIN)
        truth = sum(t[2] for t in service.batch(CHAIN, range(service.count(CHAIN))))
        assert estimates[-1].mean == pytest.approx(truth / service.count(CHAIN))
        assert service.cache_info().misses == 1


class TestInvalidationOnMutation:
    def test_insert_and_delete_refresh_results(self):
        service = QueryService(fresh_db())
        assert service.count(CHAIN) == 4
        assert service.insert("S", (30, 301))
        assert service.count(CHAIN) == 5
        assert service.delete("R", (1, 10))
        assert service.count(CHAIN) == 3

    def test_noop_mutations_keep_the_cache_warm(self):
        service = QueryService(fresh_db())
        service.count(CHAIN)
        version = service.database.version
        assert not service.insert("R", (1, 10))       # already present
        assert not service.delete("R", (99, 99))      # absent
        assert service.database.version == version
        service.count(CHAIN)
        assert service.cache_info().hits == 1

    def test_insert_arity_is_checked(self):
        service = QueryService(fresh_db())
        with pytest.raises(RelationError):
            service.insert("R", (1, 2, 3))

    def test_matches_dynamic_index_under_update_stream(self):
        """The cache's rebuild-on-mutation must agree with the incremental
        DynamicCQIndex fed the same inserts/deletes (full CQ, so both
        apply)."""
        full = "Q(a, b, c) :- R(a, b), S(b, c)"
        db = fresh_db()
        service = QueryService(db)
        dynamic = DynamicCQIndex(parse_cq(full), fresh_db())
        rng = random.Random(11)
        for step in range(120):
            relation = rng.choice(["R", "S"])
            arity2 = (rng.randrange(4), rng.randrange(4) * 10 + 10) \
                if relation == "R" else (rng.randrange(4) * 10 + 10, rng.randrange(400))
            if rng.random() < 0.6:
                changed = service.insert(relation, arity2)
                if changed:
                    dynamic.insert(relation, arity2)
            else:
                changed = service.delete(relation, arity2)
                if changed:
                    dynamic.delete(relation, arity2)
            assert service.count(full) == dynamic.count
        assert sorted(service.batch(full, range(service.count(full)))) == sorted(dynamic)


class TestDynamicMutationPath:
    """The update-in-place serving mode: cached DynamicCQIndex entries
    absorb mutations; static entries invalidate; hot keys get promoted."""

    def test_forced_dynamic_entry_survives_mutations(self):
        service = QueryService(fresh_db(), dynamic=True)
        first = service.index(CHAIN)
        assert isinstance(first, DynamicCQIndex)
        assert service.insert("S", (30, 301))
        assert service.delete("R", (1, 10))
        assert service.index(CHAIN) is first  # same object, carried forward
        assert service.cache_info().updates == 2
        assert service.cache_info().invalidations == 0
        assert service.count(CHAIN) == 3

    def test_dynamic_never_used_when_disabled(self):
        service = QueryService(fresh_db(), dynamic=False, promote_after=1)
        for __ in range(5):
            service.count(CHAIN)
            service.insert("R", (100 + service.database.version, 10))
        assert isinstance(service.index(CHAIN), CQIndex)

    def test_promotion_after_k_invalidations(self):
        service = QueryService(fresh_db(), promote_after=3)
        for round_ in range(3):
            assert not isinstance(service.index(CHAIN), DynamicCQIndex)
            service.insert("R", (200 + round_, 10))  # drops the entry: churn +1
        promoted = service.index(CHAIN)
        assert isinstance(promoted, DynamicCQIndex)
        # From now on mutations update in place instead of invalidating.
        invalidations = service.cache_info().invalidations
        service.insert("R", (300, 20))
        assert service.index(CHAIN) is promoted
        assert service.cache_info().invalidations == invalidations
        assert service.count(CHAIN) == CQIndex(parse_cq(CHAIN), service.database).count

    def test_non_full_queries_are_never_promoted(self):
        projected = "Q(a) :- R(a, b), S(b, c)"
        service = QueryService(fresh_db(), dynamic=True)
        assert isinstance(service.index(projected), CQIndex)
        service.insert("R", (50, 10))
        # The static entry was dropped (not updatable), the rebuild is
        # correct, and it stays static no matter the churn.
        assert service.count(projected) == 4
        assert isinstance(service.index(projected), CQIndex)

    def test_dynamic_and_rebuild_backed_services_agree_under_mutation(self):
        """The service-level equivalence: page/sample/count served through
        the dynamic path agree with invalidate-and-rebuild — position for
        position, since order-maintained buckets keep the canonical
        enumeration order under churn."""
        hot = QueryService(fresh_db(), dynamic=True)
        cold = QueryService(fresh_db(), dynamic=False)
        rng = random.Random(23)
        for step in range(80):
            relation = rng.choice(["R", "S"])
            row = (rng.randrange(6), rng.randrange(4) * 10 + 10) \
                if relation == "R" else (rng.randrange(4) * 10 + 10, rng.randrange(40))
            if rng.random() < 0.6:
                assert hot.insert(relation, row) == cold.insert(relation, row)
            else:
                assert hot.delete(relation, row) == cold.delete(relation, row)
            assert hot.count(CHAIN) == cold.count(CHAIN)
            n = hot.count(CHAIN)
            assert hot.batch(CHAIN, range(n)) == cold.batch(CHAIN, range(n))
            if n:
                pages = (n + 2) // 3
                hot_pages = [t for p in range(pages) for t in hot.page(CHAIN, p, page_size=3)]
                cold_pages = [t for p in range(pages) for t in cold.page(CHAIN, p, page_size=3)]
                assert hot_pages == cold_pages
                sample = hot.sample(CHAIN, min(5, n), random.Random(step))
                assert sample == cold.sample(CHAIN, min(5, n), random.Random(step))
        assert hot.cache_info().updates > 0

    def test_live_paginator_follows_dynamic_updates(self):
        service = QueryService(fresh_db(), dynamic=True)
        paginator = service.paginator(CHAIN, page_size=2)
        first_before = paginator.page(0)
        backing = service.index(CHAIN)
        assert service.insert("S", (30, 999))
        assert service.index(CHAIN) is backing  # updated in place, not rebuilt
        assert paginator.total_answers == 5
        all_pages = [t for p in range(paginator.total_pages) for t in paginator.page(p)]
        assert (3, 30, 999) in all_pages
        # The new row landed at its canonical sort position (after every
        # b=10 answer), so the already-served first page is stable.
        assert paginator.page(0) == first_before
        # And the whole pagination equals a fresh static build's order.
        assert all_pages == CQIndex(parse_cq(CHAIN), service.database).batch(range(5))

    def test_unreferenced_relation_mutations_keep_entries_and_churn(self):
        """Writes to a relation a cached query never mentions must neither
        drop the (static) entry nor count as promotion pressure."""
        db = fresh_db()
        db.add(Relation("T", ("x",), [(1,)]))
        service = QueryService(db, promote_after=2)
        entry = service.index(CHAIN)
        assert isinstance(entry, CQIndex)
        for i in range(5):
            assert service.insert("T", (100 + i,))
            assert service.index(CHAIN) is entry  # carried forward untouched
        info = service.cache_info()
        assert info.invalidations == 0 and info.updates == 5
        # Far past promote_after, yet never promoted: no churn accrued.
        assert isinstance(service.index(CHAIN), CQIndex)
        # A write to a referenced relation still invalidates as usual.
        assert service.insert("R", (50, 10))
        assert service.cache_info().invalidations == 1

    def test_out_of_band_version_bump_drops_dynamic_entry(self):
        """A mutation not driven through the service leaves the cached
        dynamic entry unpatchable — the service must drop it, not carry a
        stale structure forward."""
        db = fresh_db()
        service = QueryService(db, dynamic=True)
        entry = service.index(CHAIN)
        db.version += 1  # out-of-band change the entry knows nothing about
        assert service.insert("S", (30, 777))
        rebuilt = service.index(CHAIN)
        assert rebuilt is not entry
        assert service.count(CHAIN) == 5


class TestCachedSamplingUniformity:
    @pytest.mark.slow
    def test_first_draw_of_cached_sample_many_is_uniform(self):
        """Chi-square audit at the tolerance the uniformity experiments
        use (significance 0.001): the first element of ``sample_many``
        from a *cached* index must be uniform over the answer set — the
        cache must not freeze any sampling state, only the structure."""
        service = QueryService(fresh_db())
        n = service.count(CHAIN)
        universe = service.batch(CHAIN, range(n))
        counts = {answer: 0 for answer in universe}
        trials = 4000
        for seed in range(trials):
            first = service.sample(CHAIN, 1, random.Random(seed))[0]
            counts[first] += 1
        result = chi_square_uniform([counts[u] for u in universe])
        assert result.consistent_with_uniform(significance=0.001)
        # Every draw came through the one cached build.
        assert service.cache_info().misses == 1
