"""Unit tests for the durability tier (PR: crash-safe persistence).

Covers the canonical value encoding, atomic file publication, the
write-ahead log, checkpoints, the DurableStore recovery contract, and
the QueryService storage surface. Crash injection (torn files, missing
manifests) lives in ``test_recovery_crash.py``.
"""

import math
import pickle

import pytest

from repro import (
    Database,
    Delta,
    QueryService,
    Relation,
    ReproError,
    StorageError,
    WalError,
    WriteAheadLog,
)
from repro.database.relation import RelationError
from repro.storage import (
    DurableStore,
    ValueEncodingError,
    atomic_write_text,
    decode_cell,
    decode_row,
    encode_cell,
    encode_row,
    latest_checkpoint,
    load_checkpoint,
    prune_checkpoints,
    valid_checkpoints,
    write_checkpoint,
    write_relation_csv,
)

QUERY = "Q(a, b, c) :- R(a, b), S(b, c)"


def make_database():
    return Database([
        Relation("R", ("a", "b"), [(1, 10), (2, 20)]),
        Relation("S", ("b", "c"), [(10, "x"), (10, "y"), (20, "z")]),
    ])


# --------------------------------------------------------------------- #
# Canonical value encoding                                               #
# --------------------------------------------------------------------- #


class TestValueEncoding:
    @pytest.mark.parametrize("value", [
        None, True, False, 0, 1, -7, 10**30,
        0.5, -2.25, 1e300, float("inf"), float("-inf"),
        "", "x", "hello world", "True", "None", "null", "true", "false",
        "1", "-7", "2.5", "1e5", "nan", "inf", "1_000", " 1", "1 ",
        '"quoted"', '"', "ünïcode", "a,b", 'embedded "quotes" inside',
    ])
    def test_round_trip(self, value):
        assert decode_cell(encode_cell(value)) == value
        assert type(decode_cell(encode_cell(value))) is type(value)

    def test_nan_round_trips_as_nan(self):
        out = decode_cell(encode_cell(float("nan")))
        assert isinstance(out, float) and math.isnan(out)

    def test_json_literals(self):
        assert encode_cell(None) == "null"
        assert encode_cell(True) == "true"
        assert encode_cell(False) == "false"
        assert decode_cell("null") is None
        assert decode_cell("true") is True
        assert decode_cell("false") is False

    def test_ambiguous_strings_are_quoted(self):
        # Strings that would decode as something else must not be raw.
        for text in ("1", "true", "null", "2.5", "1_000", " 1", "nan"):
            assert encode_cell(text).startswith('"')
        # Plain strings stay raw (human-readable CSV).
        assert encode_cell("hello") == "hello"

    def test_int_float_never_collide(self):
        assert decode_cell(encode_cell(1)) == 1
        assert isinstance(decode_cell(encode_cell(1.0)), float)
        assert isinstance(decode_cell(encode_cell(1)), int)

    def test_bool_int_never_collide(self):
        assert decode_cell(encode_cell(True)) is True
        assert decode_cell(encode_cell(1)) == 1
        assert decode_cell(encode_cell(1)) is not True

    def test_legacy_cells_still_load(self):
        # Files written by the pre-durability CSV writer: plain ints,
        # floats, and ordinary strings load with identical results.
        assert decode_cell("42") == 42
        assert decode_cell("2.5") == 2.5
        assert decode_cell("hello") == "hello"

    def test_unsupported_type_raises(self):
        with pytest.raises(ValueEncodingError):
            encode_cell((1, 2))
        with pytest.raises(ValueEncodingError):
            encode_row([(1, 2)])
        with pytest.raises(TypeError):  # ValueEncodingError is a TypeError
            encode_cell(object())

    def test_row_round_trip(self):
        row = (1, "x", None, True, 2.5)
        assert decode_row(encode_row(row)) == row


# --------------------------------------------------------------------- #
# Atomic file publication                                                #
# --------------------------------------------------------------------- #


class TestAtomicWrites:
    def test_publish_and_replace(self, tmp_path):
        target = tmp_path / "data.txt"
        atomic_write_text(target, "one")
        assert target.read_text() == "one"
        atomic_write_text(target, "two")
        assert target.read_text() == "two"
        assert not (tmp_path / "data.txt.tmp").exists()

    def test_csv_round_trips_through_loader(self, tmp_path):
        from repro.cli import load_csv_database

        relation = Relation("T", ("a", "b"), [
            (1, "x"), (None, True), (2.5, "1"), ("true", "a,b"),
        ])
        write_relation_csv(tmp_path, relation)
        loaded = load_csv_database(str(tmp_path)).relation("T")
        assert loaded.columns == ("a", "b")
        assert set(loaded.rows) == set(relation.rows)

    def test_reinsert_after_reload_can_be_deleted(self, tmp_path):
        # The bug the canonical encoding fixes: a persisted fact must
        # compare equal to the in-memory fact, or its delete no-ops.
        from repro.cli import load_csv_database

        write_relation_csv(tmp_path, Relation("T", ("a",), [(True,), ("1",)]))
        db = load_csv_database(str(tmp_path))
        assert db.delete("T", (True,)) is True
        assert db.delete("T", ("1",)) is True
        assert len(db.relation("T")) == 0


# --------------------------------------------------------------------- #
# Write-ahead log                                                        #
# --------------------------------------------------------------------- #


class TestWriteAheadLog:
    def test_create_append_reopen(self, tmp_path):
        path = tmp_path / "wal.jsonl"
        wal = WriteAheadLog.open(path, instance_id="abc", base_version=3)
        wal.append(4, [("insert", "R", (1, 10))])
        wal.append(6, [("delete", "R", (1, 10)), ("insert", "S", ("x", None))])
        wal.close()

        reopened = WriteAheadLog.open(path)
        assert reopened.instance_id == "abc"
        assert reopened.base_version == 3
        assert reopened.last_version == 6
        assert reopened.discarded_records == 0
        records = list(reopened.records())
        assert [r.version for r in records] == [4, 6]
        assert records[1].ops == [
            ("delete", "R", (1, 10)), ("insert", "S", ("x", None)),
        ]

    def test_records_after_filters(self, tmp_path):
        wal = WriteAheadLog.open(tmp_path / "w", instance_id="i")
        for v in (1, 2, 3):
            wal.append(v, [("insert", "R", (v,))])
        assert [r.version for r in wal.records(after=1)] == [2, 3]

    def test_out_of_order_append_raises(self, tmp_path):
        wal = WriteAheadLog.open(tmp_path / "w", instance_id="i", base_version=5)
        with pytest.raises(WalError):
            wal.append(5, [])
        wal.append(6, [("insert", "R", (1,))])
        with pytest.raises(WalError):
            wal.append(6, [("insert", "R", (2,))])

    def test_open_missing_without_instance_raises(self, tmp_path):
        with pytest.raises(WalError):
            WriteAheadLog.open(tmp_path / "nope")

    def test_open_wrong_instance_raises(self, tmp_path):
        path = tmp_path / "w"
        WriteAheadLog.open(path, instance_id="owner").close()
        with pytest.raises(WalError):
            WriteAheadLog.open(path, instance_id="intruder")

    def test_truncate_through_rebases(self, tmp_path):
        path = tmp_path / "w"
        wal = WriteAheadLog.open(path, instance_id="i")
        for v in (1, 2, 3, 4):
            wal.append(v, [("insert", "R", (v,))])
        assert wal.truncate_through(2) == 2
        assert wal.base_version == 2
        assert [r.version for r in wal.records()] == [3, 4]

        reopened = WriteAheadLog.open(path)
        assert reopened.base_version == 2
        assert [r.version for r in reopened.records()] == [3, 4]
        # And the log accepts appends on the rebased tail.
        reopened.append(5, [("insert", "R", (5,))])
        assert reopened.last_version == 5


# --------------------------------------------------------------------- #
# Checkpoints                                                            #
# --------------------------------------------------------------------- #


class TestCheckpoints:
    def test_write_and_load(self, tmp_path):
        db = make_database()
        path = write_checkpoint(tmp_path, db)
        assert path.name == f"ckpt-{db.version:012d}"
        ckpt = load_checkpoint(path)
        assert ckpt.version == db.version
        assert ckpt.instance_id == db.instance_id
        loaded = {name: (columns, rows) for name, columns, rows in ckpt.relations}
        assert set(loaded) == {"R", "S"}
        assert loaded["R"][1] == db.relation("R").rows

    def test_latest_picks_newest(self, tmp_path):
        db = make_database()
        write_checkpoint(tmp_path, db)
        db.insert("R", (3, 30))
        write_checkpoint(tmp_path, db)
        assert len(valid_checkpoints(tmp_path)) == 2
        assert latest_checkpoint(tmp_path).version == db.version

    def test_prune_keeps_newest(self, tmp_path):
        db = make_database()
        for i in range(4):
            db.insert("R", (100 + i, i))
            write_checkpoint(tmp_path, db)
        assert prune_checkpoints(tmp_path, keep=2) == 2
        remaining = valid_checkpoints(tmp_path)
        assert len(remaining) == 2
        assert latest_checkpoint(tmp_path).version == db.version

    def test_serve_state_round_trips(self, tmp_path):
        db = make_database()
        key = ("cq", "canonical", "key")
        path = write_checkpoint(tmp_path, db, serve_state=[(key, {"n": 3})])
        ckpt = load_checkpoint(path)
        assert ckpt.serve_state == [(key, {"n": 3})]

    def test_unpicklable_serve_entry_skipped(self, tmp_path):
        db = make_database()
        path = write_checkpoint(
            tmp_path, db,
            serve_state=[(("bad",), lambda: None), (("good",), 7)],
        )
        ckpt = load_checkpoint(path)
        assert ckpt.serve_state == [(("good",), 7)]

    def test_rewrite_same_version_is_atomic(self, tmp_path):
        db = make_database()
        write_checkpoint(tmp_path, db)
        path = write_checkpoint(tmp_path, db)  # same version again
        assert load_checkpoint(path).version == db.version
        assert len(valid_checkpoints(tmp_path)) == 1


# --------------------------------------------------------------------- #
# DurableStore: bind / checkpoint / recover                              #
# --------------------------------------------------------------------- #


class TestDurableStore:
    def test_bind_writes_base_checkpoint_and_logs(self, tmp_path):
        db = make_database()
        store = DurableStore(tmp_path).bind(db)
        assert db.log is store.wal
        assert latest_checkpoint(tmp_path).version == db.version
        db.insert("R", (3, 30))
        db.apply(Delta(database=db).insert("S", (30, "w")).delete("R", (1, 10)))
        assert store.wal.appends == 2

    def test_recover_replays_to_last_version(self, tmp_path):
        db = make_database()
        DurableStore(tmp_path).bind(db)
        db.insert("R", (3, 30))
        db.delete("S", (10, "x"))
        db.log.close()

        recovered, report = DurableStore(tmp_path).recover()
        assert recovered.version == db.version
        assert recovered.instance_id == db.instance_id
        assert set(recovered.relation("R").rows) == set(db.relation("R").rows)
        assert set(recovered.relation("S").rows) == set(db.relation("S").rows)
        assert report.replayed_batches == 2
        assert report.final_version == db.version
        # The recovered database stays durable: writes keep logging.
        recovered.insert("R", (4, 40))
        again, __ = DurableStore(tmp_path).recover()
        assert again.version == recovered.version

    def test_checkpoint_trims_wal(self, tmp_path):
        db = make_database()
        store = DurableStore(tmp_path).bind(db)
        db.insert("R", (3, 30))
        db.insert("R", (4, 40))
        store.checkpoint(db)
        assert len(store.wal) == 0  # tail folded into the checkpoint
        db.insert("R", (5, 50))
        recovered, report = DurableStore(tmp_path).recover()
        assert report.checkpoint_version == db.version - 1
        assert report.replayed_batches == 1
        assert recovered.version == db.version

    def test_recover_empty_directory_raises(self, tmp_path):
        with pytest.raises(StorageError):
            DurableStore(tmp_path / "empty").recover()

    def test_bind_diverged_database_raises(self, tmp_path):
        db = make_database()
        DurableStore(tmp_path).bind(db)
        db.insert("R", (3, 30))
        db.log.close()
        recovered, __ = DurableStore(tmp_path).recover()
        recovered.insert("R", (9, 90))  # store moves past the stale copy
        recovered.log.close()
        db.bind_log(None)
        with pytest.raises(StorageError):
            DurableStore(tmp_path).bind(db)

    def test_bind_foreign_instance_raises(self, tmp_path):
        db = make_database()
        DurableStore(tmp_path).bind(db)
        db.log.close()
        intruder = make_database()
        with pytest.raises(StorageError):
            DurableStore(tmp_path).bind(intruder)

    def test_copy_clone_cannot_join_history(self, tmp_path):
        db = make_database()
        store = DurableStore(tmp_path).bind(db)
        clone = db.copy()
        assert clone.log is None  # copies shed the log
        with pytest.raises(ReproError):
            clone.bind_log(store.wal)
        with pytest.raises(StorageError):
            store.checkpoint(clone)

    def test_database_recover_classmethod(self, tmp_path):
        db = make_database()
        DurableStore(tmp_path).bind(db)
        db.insert("R", (3, 30))
        db.log.close()
        recovered = Database.recover(tmp_path)
        assert recovered.version == db.version
        assert recovered.log is not None

    def test_wal_append_failure_leaves_database_untouched(self, tmp_path):
        db = make_database()
        DurableStore(tmp_path).bind(db)
        version = db.version
        rows = list(db.relation("R").rows)

        class Exploding:
            instance_id = db.instance_id

            def append(self, version, ops):
                raise OSError("disk full")

        db.bind_log(Exploding())
        with pytest.raises(OSError):
            db.insert("R", (99, 99))
        assert db.version == version
        assert db.relation("R").rows == rows


# --------------------------------------------------------------------- #
# QueryService storage surface                                           #
# --------------------------------------------------------------------- #


class TestServiceDurability:
    def test_storage_path_binds(self, tmp_path):
        service = QueryService(make_database(), storage=tmp_path)
        assert service.storage is not None
        assert service.database.log is service.storage.wal

    def test_stats_counters(self, tmp_path):
        service = QueryService(make_database(), storage=tmp_path)
        service.insert("R", (3, 30))
        service.delete("S", (10, "x"))
        service.checkpoint()
        stats = service.stats()
        assert stats.wal_appends == 2
        assert stats.checkpoints == 2  # base + explicit
        assert stats.wal_replayed_ops == 0

    def test_stats_counters_without_storage(self):
        stats = QueryService(make_database()).stats()
        assert stats.wal_appends == 0
        assert stats.wal_replayed_ops == 0
        assert stats.checkpoints == 0

    def test_checkpoint_without_storage_raises(self):
        with pytest.raises(StorageError):
            QueryService(make_database()).checkpoint()

    def test_recover_round_trips_answers(self, tmp_path):
        service = QueryService(make_database(), storage=tmp_path, dynamic=True)
        before = service.count(QUERY)
        service.insert("S", (20, "w"))
        service.checkpoint()
        service.apply(
            Delta(database=service.database).insert("R", (3, 20)).delete("S", (10, "x"))
        )
        expected = service.count(QUERY)
        assert expected != before

        recovered = QueryService.recover(tmp_path, dynamic=True)
        assert recovered.count(QUERY) == expected
        assert recovered.database.version == service.database.version
        report = recovered.storage.last_report
        assert report.replayed_batches == 1
        assert recovered.stats().wal_replayed_ops == report.replayed_ops

    def test_recover_seeds_serve_state(self, tmp_path):
        service = QueryService(make_database(), storage=tmp_path)
        service.count(QUERY)  # build the index the checkpoint will carry
        service.checkpoint()

        recovered = QueryService.recover(tmp_path)
        report = recovered.storage.last_report
        assert report.serve_entries_seeded >= 1
        # The answer comes from the seeded index: serving the query after
        # recovery adds no cache miss (no fresh O(|D|) build).
        misses_after_recovery = recovered.cache_info().misses
        assert recovered.count(QUERY) == service.count(QUERY)
        assert recovered.cache_info().misses == misses_after_recovery

    def test_recovered_service_keeps_serving_through_writes(self, tmp_path):
        service = QueryService(make_database(), storage=tmp_path, dynamic=True)
        service.count(QUERY)
        service.checkpoint()
        service.insert("S", (20, "w"))

        recovered = QueryService.recover(tmp_path, dynamic=True)
        assert recovered.count(QUERY) == service.count(QUERY)
        recovered.insert("S", (20, "v"))
        assert recovered.count(QUERY) == service.count(QUERY) + 1

    def test_serve_state_survives_pickle_of_index(self, tmp_path):
        # The checkpointed index objects must actually pickle (they carry
        # no open handles); guard against a future unpicklable field.
        service = QueryService(make_database(), storage=tmp_path)
        service.count(QUERY)
        state = service._serve_state()
        assert state
        for __, entry in state:
            pickle.loads(pickle.dumps(entry))
