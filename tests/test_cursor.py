"""Tests for the Cursor read surface, transactions, and the apply CLI."""

import random

import pytest

from repro import (
    Cursor,
    Database,
    QueryService,
    Relation,
    ReproError,
    StaleCursorError,
)
from repro.cli import main


def fresh_db() -> Database:
    return Database([
        Relation("R", ("a", "b"), [(1, 10), (2, 20), (3, 30)]),
        Relation("S", ("b", "c"), [(10, 100), (10, 101), (20, 200), (30, 300)]),
    ])


CHAIN = "Q(a, b, c) :- R(a, b), S(b, c)"


class TestCursorReads:
    def test_cursor_agrees_with_free_methods(self):
        service = QueryService(fresh_db())
        cursor = service.cursor(CHAIN)
        assert isinstance(cursor, Cursor)
        n = cursor.count
        assert n == service.count(CHAIN) == len(cursor)
        assert cursor.get(0) == service.get(CHAIN, 0)
        assert cursor.batch([2, 0, 2]) == service.batch(CHAIN, [2, 0, 2])
        assert cursor.batch_range(1, 3) == service.batch_range(CHAIN, 1, 3)
        assert cursor.sample(2, random.Random(5)) == \
            service.sample(CHAIN, 2, random.Random(5))
        for position, answer in enumerate(cursor.batch(range(n))):
            assert cursor.position_of(answer) == position
            assert answer in cursor
        assert (99, 99, 99) not in cursor
        assert sorted(cursor.random_order(random.Random(1))) == \
            sorted(cursor.batch(range(n)))

    def test_query_resolves_exactly_once(self):
        service = QueryService(fresh_db())
        cursor = service.cursor(CHAIN)
        resolved = cursor.query
        cursor.count
        cursor.get(0)
        assert cursor.query is resolved  # same parsed object throughout
        # One build and one probe per pinned version: the second read
        # serves from the pinned view without touching the cache again.
        info = service.cache_info()
        assert info.misses == 1 and info.hits == 0
        assert service.stats().snapshot_reads == 2
        # A mutation re-pins (one more probe), then reads are probe-free.
        service.insert("R", (7, 10))
        cursor.count
        cursor.get(0)
        assert service.cache_info().misses == 2  # static entry rebuilt
        assert service.stats().locked_reads == 0

    def test_pages_cover_the_enumeration_in_order(self):
        service = QueryService(fresh_db())
        cursor = service.cursor(CHAIN)
        pages = list(cursor.pages(page_size=2))
        assert [len(p) for p in pages] == [2, 2]
        assert [t for page in pages for t in page] == \
            cursor.batch(range(cursor.count))
        assert cursor.page(0, page_size=3) == cursor.batch_range(0, 3)
        assert cursor.page(99, page_size=3) == []  # past the end: empty
        with pytest.raises(ValueError):
            cursor.page(-1)

    def test_membership_on_union_cursor_falls_back_to_enumeration(self):
        """Regression: the union index has no inverted access; membership
        must still answer correctly (via the index's own fallback), not
        conflate 'unsupported' with 'absent'."""
        db = fresh_db()
        db.add(Relation("T", ("b", "c"), [(10, 100), (20, 777)]))
        service = QueryService(db)
        union = "Q(a, b, c) :- R(a, b), S(b, c) ; Q(a, b, c) :- R(a, b), T(b, c)"
        cursor = service.cursor(union)
        answer = cursor.get(0)
        assert answer in cursor
        assert (99, 99, 99) not in cursor
        # position_of still reports None (no inverted support) — the
        # documented free-method contract.
        assert cursor.position_of(answer) is None

    def test_cursor_duck_types_the_index_contract(self):
        service = QueryService(fresh_db())
        cursor = service.cursor(CHAIN)
        index = service.index(CHAIN)
        assert cursor.access(1) == index.access(1)
        assert cursor.sample_many(2, random.Random(3)) == \
            index.sample_many(2, random.Random(3))
        assert cursor.inverted_access(index.access(2)) == 2
        assert list(cursor) == list(index)
        cursor.ensure_inverted_support()  # must not raise
        assert cursor.index is index


class TestCursorStaleness:
    def test_reresolve_policy_follows_mutations(self):
        service = QueryService(fresh_db(), dynamic=True)
        cursor = service.cursor(CHAIN)
        assert cursor.count == 4
        backing = cursor.index
        version = cursor.version
        assert service.insert("S", (30, 301))
        assert cursor.is_stale
        assert cursor.count == 5          # transparently re-bound
        assert not cursor.is_stale
        assert cursor.version == version + 1
        assert cursor.index is backing    # dynamic entry patched in place

    def test_raise_policy_raises_until_refreshed(self):
        service = QueryService(fresh_db())
        cursor = service.cursor(CHAIN, on_stale="raise")
        assert cursor.count == 4
        assert service.delete("R", (1, 10))
        with pytest.raises(StaleCursorError) as excinfo:
            cursor.count
        assert isinstance(excinfo.value, ReproError)
        assert excinfo.value.bound_version < excinfo.value.current_version
        # Reads stay blocked until the caller acknowledges the new version.
        with pytest.raises(StaleCursorError):
            cursor.get(0)
        assert cursor.refresh() is cursor
        assert cursor.count == 2

    def test_unknown_policy_rejected(self):
        service = QueryService(fresh_db())
        with pytest.raises(ValueError):
            service.cursor(CHAIN, on_stale="explode")

    def test_stale_check_happens_before_serving(self):
        """A raise-policy cursor must never serve answers from a newer
        version than the one it reports."""
        service = QueryService(fresh_db())
        cursor = service.cursor(CHAIN, on_stale="raise")
        bound = cursor.version
        service.insert("S", (30, 999))
        with pytest.raises(StaleCursorError):
            cursor.batch_range(0, 10)
        assert cursor.version == bound  # binding unchanged by the failure


class TestTransactions:
    def test_transaction_buffers_and_applies_once(self):
        service = QueryService(fresh_db(), dynamic=True)
        service.count(CHAIN)
        version = service.database.version
        with service.transaction() as txn:
            txn.insert("R", (4, 10))
            txn.delete("S", (20, 200))
            assert service.database.version == version  # nothing applied yet
        assert service.database.version == version + 1
        assert txn.result.inserted == 1 and txn.result.deleted == 1
        assert service.count(CHAIN) == 5
        assert service.stats().batched_updates == 1

    def test_transaction_rolls_back_on_exception(self):
        service = QueryService(fresh_db())
        version = service.database.version
        with pytest.raises(RuntimeError):
            with service.transaction() as txn:
                txn.insert("R", (4, 10))
                raise RuntimeError("abort")
        assert service.database.version == version
        assert txn.result is None
        assert (4, 10) not in service.database.relation("R").rows

    def test_transaction_validates_at_recording_time(self):
        service = QueryService(fresh_db())
        from repro import DeltaError
        with pytest.raises(DeltaError):
            with service.transaction() as txn:
                txn.insert("R", (1, 2, 3))  # wrong arity: fails fast
        assert service.database.version == fresh_db().version


class TestApplyCli:
    @pytest.fixture()
    def csv_db(self, tmp_path):
        (tmp_path / "R.csv").write_text("a,b\n1,10\n2,20\n")
        (tmp_path / "S.csv").write_text("b,c\n10,x\n10,y\n20,z\n")
        return tmp_path

    def test_apply_reports_per_relation_counts_and_persists(self, csv_db, capsys):
        delta_file = csv_db / "delta.jsonl"
        delta_file.write_text(
            '{"op": "insert", "relation": "R", "row": [3, 10]}\n'
            '{"op": "insert", "relation": "R", "row": [1, 10]}\n'
            '{"op": "delete", "relation": "S", "row": [20, "z"]}\n'
            '\n'
            '{"op": "insert", "relation": "S", "row": [10, "w"]}\n'
            '{"op": "delete", "relation": "S", "row": [10, "w"]}\n'
        )
        assert main(["apply", str(csv_db), str(delta_file)]) == 0
        out = capsys.readouterr().out
        assert "R: 1 applied (+1 -0), 1 no-op" in out
        assert "S: 1 applied (+0 -1), 1 no-op" in out
        assert "1 inserted, 1 deleted, 2 no-op" in out
        assert (csv_db / "R.csv").read_text().splitlines()[-1] == "3,10"
        assert "20,z" not in (csv_db / "S.csv").read_text()

    def test_apply_rejects_bad_arity_with_line_number(self, csv_db, capsys):
        delta_file = csv_db / "delta.jsonl"
        delta_file.write_text('{"op": "insert", "relation": "R", "row": [9]}\n')
        before = (csv_db / "R.csv").read_text()
        with pytest.raises(SystemExit) as excinfo:
            main(["apply", str(csv_db), str(delta_file)])
        assert "delta.jsonl:1" in str(excinfo.value)
        assert "arity" in str(excinfo.value)
        assert (csv_db / "R.csv").read_text() == before  # nothing applied

    def test_apply_rejects_malformed_lines(self, csv_db):
        delta_file = csv_db / "delta.jsonl"
        for bad in (
            "not json",
            '{"op": "insert"}',
            '{"op": "insert", "relation": "R", "row": 3}',
            # Nested values must be rejected up front with the line number,
            # not crash later as unhashable rows deep in Database.apply.
            '{"op": "insert", "relation": "R", "row": [2, [3]]}',
            '{"op": "insert", "relation": "R", "row": [2, {"x": 1}]}',
        ):
            delta_file.write_text(bad + "\n")
            with pytest.raises(SystemExit) as excinfo:
                main(["apply", str(csv_db), str(delta_file)])
            assert "delta.jsonl:1" in str(excinfo.value)

    def test_apply_missing_file_exits(self, csv_db):
        with pytest.raises(SystemExit):
            main(["apply", str(csv_db), str(csv_db / "nope.jsonl")])
