"""Tests for the columnar serve-state blob format (``serve-flat/``).

Covers the zero-copy contract end to end: lossless round-trips through
the npy-slab format (mixed scalar types, type-exactly), lazy value-table
materialization (recovery constructs **zero** per-row python objects
before the first object-gathering read), pickling of blob-loaded
entries, the pickle fallback for entries the format cannot carry
(int64-overflow tuple fallback, unpicklable cache entries), and the
manifest/CLI size-and-skip reporting.
"""

import argparse
import pickle

import pytest

np = pytest.importorskip("numpy")

from repro import Database, Delta, QueryService, Relation, parse_cq
from repro.cli import _print_serve_report, command_checkpoint, command_recover
from repro.core import flat_store
from repro.core.cq_index import CQIndex
from repro.storage import serve_blob
from repro.storage.checkpoint import latest_checkpoint, valid_checkpoints

QUERY = "Q(a, b, c) :- R(a, b), S(b, c)"


def mixed_database() -> Database:
    """Mixed scalar types on the non-join columns — the codec must carry
    None/bool/int/float/str through bit-exactly."""
    return Database([
        Relation("R", ("a", "b"), [
            (1, 10), (2.5, 10), ("x", 20), (None, 20), (True, 30), (-7, 30),
        ]),
        Relation("S", ("b", "c"), [
            (10, "alpha"), (10, None), (20, 3.25), (20, ""), (30, False),
        ]),
    ])


def build_entry(database=None):
    """A flat-backed CQIndex plus the key it would be cached under."""
    index = CQIndex(parse_cq(QUERY), database or mixed_database(), store="flat")
    assert index.store == "flat"
    return ("Q-key",), index


def write_bytes(path, payload):
    path.write_bytes(payload)


def cells_identical(left, right):
    """Type-exact tuple equality (True is not 1, 1 is not 1.0)."""
    return len(left) == len(right) and all(
        type(a) is type(b) and a == b for a, b in zip(left, right)
    )


class TestBlobRoundTrip:
    def test_answers_survive_bit_exactly(self, tmp_path):
        key, entry = build_entry()
        serve_blob.write_serve_entry(tmp_path / "e", key, entry, write_bytes)
        loaded_key, loaded = serve_blob.load_serve_entry(tmp_path / "e")

        assert loaded_key == key
        assert loaded.count == entry.count > 0
        assert loaded.store == "flat"
        originals = list(entry)
        recovered = list(loaded)
        for original, answer in zip(originals, recovered):
            assert cells_identical(original, answer)
        assert loaded.batch(range(entry.count)) == originals

    def test_inverted_access_round_trips(self, tmp_path):
        key, entry = build_entry()
        serve_blob.write_serve_entry(tmp_path / "e", key, entry, write_bytes)
        __, loaded = serve_blob.load_serve_entry(tmp_path / "e")

        for position, answer in enumerate(entry):
            assert loaded.inverted_access(answer) == position
        assert loaded.inverted_access(("no", "such", "answer")) is None

    def test_slabs_arrive_as_readonly_mmaps(self, tmp_path):
        key, entry = build_entry()
        serve_blob.write_serve_entry(tmp_path / "e", key, entry, write_bytes)
        __, loaded = serve_blob.load_serve_entry(tmp_path / "e")

        flats = [node.flat
                 for root in loaded._forest.roots
                 for node in root.all_nodes()]
        mmapped = [flat.row_start for flat in flats]
        assert any(isinstance(array, np.memmap) for array in mmapped)
        assert all(not array.flags.writeable for array in mmapped)

    def test_value_tables_stay_deferred_until_a_gather(self, tmp_path):
        key, entry = build_entry()
        serve_blob.write_serve_entry(tmp_path / "e", key, entry, write_bytes)

        before = flat_store.TABLE_MATERIALIZATIONS
        __, loaded = serve_blob.load_serve_entry(tmp_path / "e")
        assert loaded.count == entry.count
        assert loaded._forest.roots[0].flat.weights[0] >= 0  # slab access
        assert flat_store.TABLE_MATERIALIZATIONS == before
        assert loaded.access(0) == entry.access(0)  # first gather pays
        assert flat_store.TABLE_MATERIALIZATIONS > before

    def test_blob_loaded_entry_still_pickles(self, tmp_path):
        key, entry = build_entry()
        serve_blob.write_serve_entry(tmp_path / "e", key, entry, write_bytes)
        __, loaded = serve_blob.load_serve_entry(tmp_path / "e")

        clone = pickle.loads(pickle.dumps(loaded))
        assert clone.count == entry.count
        assert list(clone) == list(entry)

    def test_overflow_fallback_entry_is_not_blob_eligible(self):
        # 10 star atoms with 100 partners each: the root weight would be
        # 100^10 > 2^62, so the flat build falls back to tuple stores —
        # and the blob format (int64 slabs) must refuse the entry.
        atoms = ", ".join(f"R{i}(x, a{i})" for i in range(10))
        heads = ", ".join(f"a{i}" for i in range(10))
        query = parse_cq(f"Q(x, {heads}) :- {atoms}")
        database = Database([
            Relation(f"R{i}", ("x", "y"), [(0, j) for j in range(100)])
            for i in range(10)
        ])
        entry = CQIndex(query, database, store="flat")
        assert entry.store == "tuple"
        assert not serve_blob.can_blob(entry)

    def test_dynamic_and_tuple_entries_are_not_blob_eligible(self):
        __, flat_entry = build_entry()
        assert serve_blob.can_blob(flat_entry)
        tuple_entry = CQIndex(parse_cq(QUERY), mixed_database(), store="tuple")
        assert not serve_blob.can_blob(tuple_entry)
        assert not serve_blob.can_blob(object())


def durable_service(tmp_path, database=None):
    service = QueryService(
        database or mixed_database(), storage=tmp_path, store="flat"
    )
    expected = service.count(QUERY)
    return service, expected


class TestCheckpointBlobLane:
    def test_checkpoint_writes_blob_directory(self, tmp_path):
        service, __ = durable_service(tmp_path)
        service.checkpoint()
        manifest = service.storage.last_manifest
        assert manifest["serve_format"] == "blob"
        assert manifest["serve_flat"] == ["serve-flat/entry-0"]
        newest = valid_checkpoints(tmp_path)[-1]
        assert (newest / "serve-flat" / "entry-0" / "meta.json").exists()
        # Every blob file is checksummed by the manifest.
        blob_files = [name for name in manifest["files"]
                      if name.startswith("serve-flat/")]
        assert len(blob_files) == len(
            list((newest / "serve-flat" / "entry-0").iterdir())
        )

    def test_manifest_reports_per_entry_kind_and_bytes(self, tmp_path):
        service, __ = durable_service(tmp_path)
        service.checkpoint()
        manifest = service.storage.last_manifest
        (entry,) = manifest["entries"]
        assert entry["kind"] == "flat-blob"
        assert entry["label"] == "Q"
        assert entry["location"] == "serve-flat/entry-0"
        newest = valid_checkpoints(tmp_path)[-1]
        on_disk = sum(
            child.stat().st_size
            for child in (newest / "serve-flat" / "entry-0").iterdir()
        )
        assert entry["bytes"] == on_disk > 0

    def test_serve_format_pickle_forces_legacy_path(self, tmp_path):
        service, expected = durable_service(tmp_path)
        service.checkpoint(serve_format="pickle")
        manifest = service.storage.last_manifest
        assert manifest["serve_flat"] == []
        (entry,) = manifest["entries"]
        assert entry["kind"] == "pickle"
        service.database.log.close()
        recovered = QueryService.recover(tmp_path, store="flat")
        assert recovered.storage.last_report.serve_entries_seeded == 1
        assert recovered.count(QUERY) == expected

    def test_recovery_is_mmap_and_go(self, tmp_path):
        service, expected = durable_service(tmp_path)
        expected_page = service.page(QUERY, 2, page_size=3)
        service.checkpoint()
        service.database.log.close()

        before = flat_store.TABLE_MATERIALIZATIONS
        recovered = QueryService.recover(tmp_path, store="flat")
        assert recovered.storage.last_report.serve_entries_seeded == 1
        assert recovered.count(QUERY) == expected
        # Counting runs on the mmapped slabs alone: zero value tables
        # (i.e. zero per-row python objects) materialized so far.
        assert flat_store.TABLE_MATERIALIZATIONS == before
        page = recovered.page(QUERY, 2, page_size=3)
        assert flat_store.TABLE_MATERIALIZATIONS > before
        assert page == expected_page
        for original, answer in zip(expected_page, page):
            assert cells_identical(original, answer)

    def test_seeded_entry_survives_wal_tail_on_unrelated_relation(
        self, tmp_path
    ):
        database = mixed_database()
        database.add(Relation("E", ("id",), [(0,)]))
        service, expected = durable_service(tmp_path, database)
        service.checkpoint()
        delta = Delta(database=database)
        delta.insert("E", (1,))
        service.apply(delta)
        database.log.close()

        recovered = QueryService.recover(tmp_path, store="flat")
        report = recovered.storage.last_report
        assert report.replayed_batches == 1
        assert report.serve_entries_seeded == 1
        assert recovered.count(QUERY) == expected

    def test_recovered_service_can_checkpoint_again(self, tmp_path):
        service, expected = durable_service(tmp_path)
        service.checkpoint()
        service.database.log.close()

        recovered = QueryService.recover(tmp_path, store="flat")
        recovered.count(QUERY)
        recovered.database.insert("R", (99, 10))
        recovered.count(QUERY)  # rebuild the entry at the new version
        recovered.checkpoint()
        manifest = recovered.storage.last_manifest
        assert any(e["kind"] == "flat-blob" for e in manifest["entries"])
        recovered.database.log.close()

        again = QueryService.recover(tmp_path, store="flat")
        assert again.storage.last_report.serve_entries_seeded == 1
        assert again.count(QUERY) == expected + 2  # (99,10) joins both S rows

    def test_unpicklable_entry_is_skipped_and_counted(self, tmp_path):
        service, expected = durable_service(tmp_path)
        database = service.database
        # A cache resident that neither the blob format nor pickle can
        # carry (a lambda): the checkpoint must skip it, count it, and
        # still persist everything else.
        service._cache.get_or_build(
            (database, database.version, ("unserializable",)),
            lambda: (lambda: None),
        )
        service.checkpoint()
        manifest = service.storage.last_manifest
        assert manifest["skipped_entries"] == 1
        assert manifest["serve_entries"] == 1
        assert service.stats().checkpoint_skipped_entries == 1
        service.database.log.close()

        recovered = QueryService.recover(tmp_path, store="flat")
        assert recovered.storage.last_report.serve_entries_seeded == 1
        assert recovered.count(QUERY) == expected
        assert recovered.stats().checkpoint_skipped_entries == 0

    def test_overflow_fallback_rides_the_pickle_lane(self, tmp_path):
        atoms = ", ".join(f"R{i}(x, a{i})" for i in range(10))
        heads = ", ".join(f"a{i}" for i in range(10))
        query = f"Q(x, {heads}) :- {atoms}"
        database = Database([
            Relation(f"R{i}", ("x", "y"), [(0, j) for j in range(100)])
            for i in range(10)
        ])
        service = QueryService(database, storage=tmp_path, store="flat")
        expected = service.count(query)
        assert expected == 100 ** 10
        service.checkpoint()
        manifest = service.storage.last_manifest
        (entry,) = manifest["entries"]
        assert entry["kind"] == "pickle"  # int64 overflow → tuple store
        assert manifest["serve_flat"] == []
        database.log.close()

        recovered = QueryService.recover(tmp_path, store="flat")
        assert recovered.storage.last_report.serve_entries_seeded == 1
        assert recovered.count(query) == expected


class TestCLIReporting:
    def test_checkpoint_command_reports_blob_entries(self, tmp_path, capsys):
        service, __ = durable_service(tmp_path)
        service.checkpoint()
        service.database.log.close()

        assert command_checkpoint(
            argparse.Namespace(store=str(tmp_path), keep=2)
        ) == 0
        out = capsys.readouterr().out
        assert "serve entries: 1 (1 columnar blob(s)" in out
        assert "flat-blob" in out
        assert "serve-flat/entry-0" in out
        assert "checkpoint written:" in out

    def test_recover_command_reports_serve_state(self, tmp_path, capsys):
        service, __ = durable_service(tmp_path)
        service.checkpoint()
        service.database.log.close()

        assert command_recover(
            argparse.Namespace(store=str(tmp_path), csv=None)
        ) == 0
        out = capsys.readouterr().out
        assert "recovered version:" in out
        assert "1 columnar blob(s)" in out

    def test_skipped_entries_surface_in_the_report(self, capsys):
        _print_serve_report({
            "serve_entries": 1,
            "skipped_entries": 2,
            "entries": [{
                "label": "Q", "kind": "pickle",
                "bytes": 123, "location": "serve.pkl#0",
            }],
        })
        out = capsys.readouterr().out
        assert "serve entries skipped (unserializable): 2" in out
        assert "0 columnar blob(s)" in out

    def test_pre_blob_manifest_tolerated(self, capsys):
        _print_serve_report({"serve_entries": 3})  # no "entries" key
        assert "serve entries: 3" in capsys.readouterr().out
        _print_serve_report(None)  # no manifest at all

    def test_old_style_serve_pickle_still_loads(self, tmp_path):
        # Pre-blob checkpoints stored serve.pkl as inline (key, entry)
        # pairs rather than per-entry pickled bytes: rewrite a fresh
        # checkpoint into the old shape and load it.
        import json
        import pickle as pkl
        import zlib

        service, expected = durable_service(tmp_path)
        service.checkpoint(serve_format="pickle")
        service.database.log.close()
        newest = valid_checkpoints(tmp_path)[-1]
        pairs = [pkl.loads(blob)
                 for blob in pkl.loads((newest / "serve.pkl").read_bytes())]
        payload = pkl.dumps(pairs, protocol=pkl.HIGHEST_PROTOCOL)
        (newest / "serve.pkl").write_bytes(payload)
        manifest = json.loads((newest / "manifest.json").read_text())
        manifest["files"]["serve.pkl"] = "%08x" % zlib.crc32(payload)
        (newest / "manifest.json").write_text(json.dumps(manifest))

        ckpt = latest_checkpoint(tmp_path)
        assert len(ckpt.serve_state) == 1
        recovered = QueryService.recover(tmp_path, store="flat")
        assert recovered.storage.last_report.serve_entries_seeded == 1
        assert recovered.count(QUERY) == expected
