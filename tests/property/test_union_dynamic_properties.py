"""Property-based testing of dynamic mc-UCQ serving: arbitrary interleaved
insert/delete/no-op sequences must leave the in-place-updated union index
agreeing with a freshly built static MCUCQIndex after *every* operation —
count, full enumeration order, and the inverted-access bijections the
union machinery is built on."""

from hypothesis import given, settings, strategies as st

from repro import Database, MCUCQIndex, Relation, parse_ucq

UCQ = parse_ucq(
    "Q(a, b, c) :- R(a, b), S(b, c) ; Q(a, b, c) :- R(a, b), T(b, c)"
)

# An operation: (relation choice, insert?, value1, value2). Values are
# drawn from a tiny domain so that inserts/deletes frequently collide —
# producing genuine no-ops, revivals, and intersection transitions.
operation = st.tuples(
    st.integers(0, 2), st.booleans(), st.integers(0, 3), st.integers(0, 2)
)

RELATIONS = ("R", "S", "T")


@given(st.lists(operation, max_size=25))
@settings(max_examples=60, deadline=None)
def test_interleaved_ops_match_fresh_static_union_every_step(operations):
    db = Database([
        Relation("R", ("a", "b"), [(0, 0), (1, 1)]),
        Relation("S", ("b", "c"), [(0, 0), (1, 2)]),
        Relation("T", ("b", "c"), [(0, 0), (0, 2)]),
    ])
    dynamic = MCUCQIndex(UCQ, db, dynamic=True)
    live = {name: set(db.relation(name).rows) for name in RELATIONS}

    for which, is_insert, v1, v2 in operations:
        relation = RELATIONS[which]
        row = (v1, v2)
        if is_insert:
            if row in live[relation]:
                continue
            live[relation].add(row)
            dynamic.insert(relation, row)
        elif row in live[relation]:
            live[relation].remove(row)
            dynamic.delete(relation, row)
        else:
            # A genuine no-op delete, driven through the index on purpose:
            # it must change nothing.
            before = dynamic.count
            dynamic.delete(relation, row)
            assert dynamic.count == before

        current = Database([
            Relation(name, db.relation(name).columns, sorted(live[name]))
            for name in RELATIONS
        ])
        fresh = MCUCQIndex(UCQ, current, dynamic=False)

        # Count and the full union enumeration order (the ISSUE's bar:
        # a mutated dynamic union enumerates identically to a fresh
        # static build — canonical order is maintained under churn).
        assert dynamic.count == fresh.count
        assert list(dynamic) == list(fresh)
        assert [dynamic.access(i) for i in range(dynamic.count)] == \
            [fresh.access(i) for i in range(fresh.count)]

        # Inverted access: every member (and intersection) must expose
        # the position bijection the Durand–Strozecki rank searches use.
        for member, fresh_member in zip(
            dynamic.member_indexes, fresh.member_indexes
        ):
            answers = list(member)
            assert answers == list(fresh_member)
            for position, answer in enumerate(answers):
                assert member.inverted_access(answer) == position
                assert fresh_member.inverted_access(answer) == position
        for key, forest in dynamic.intersection_indexes.items():
            assert list(forest) == list(fresh.intersection_indexes[key])
            for position, answer in enumerate(forest):
                assert forest.inverted_access(answer) == position
