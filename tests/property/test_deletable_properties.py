"""Model-based property test for Lemma 5.3's deletable answer set:
a random sequence of delete/test/sample operations against a plain set."""

import random

from hypothesis import given, settings, strategies as st

from repro import CQIndex, Database, DeletableAnswerSet, Relation, parse_cq


def _make_index(pairs):
    db = Database([
        Relation("R", ("a", "b"), [(a, b) for a, b in pairs]),
        Relation("S", ("b", "c"), [(b, b) for __, b in pairs]),
    ])
    return CQIndex(parse_cq("Q(a, b, c) :- R(a, b), S(b, c)"), db)


@given(
    pairs=st.lists(
        st.tuples(st.integers(0, 5), st.integers(0, 3)), min_size=1, max_size=15
    ),
    operations=st.lists(st.integers(0, 2), max_size=40),
    seed=st.integers(0, 2**32 - 1),
)
@settings(max_examples=80, deadline=None)
def test_against_set_model(pairs, operations, seed):
    index = _make_index(pairs)
    rng = random.Random(seed)
    deletable = DeletableAnswerSet(index, rng=rng)
    model = {index.access(i) for i in range(index.count)}
    universe = list(model)

    for op in operations:
        assert deletable.count() == len(model)
        if not universe:
            break
        target = universe[rng.randrange(len(universe))]
        if op == 0:  # delete
            assert deletable.delete(target) == (target in model)
            model.discard(target)
        elif op == 1:  # test
            assert deletable.test(target) == (target in model)
        else:  # sample
            if model:
                assert deletable.sample() in model
            else:
                try:
                    deletable.sample()
                    raise AssertionError("sample from empty set must raise")
                except LookupError:
                    pass
    assert deletable.count() == len(model)
