"""Property-based testing of snapshot isolation: a pinned snapshot must
enumerate exactly like a fresh static build of the version it pinned —
and must keep doing so, position for position, however much the live
index mutates afterward.

Runs once per bucket backend via the ``store`` fixture — the flat slab
treap's copy-on-write snapshots must honor the same contract as the
object treap's."""

from hypothesis import given, settings, strategies as st

from repro import CQIndex, Database, DynamicCQIndex, Relation, parse_cq, parse_ucq
from repro.core.union_access import MCUCQIndex

QUERY = parse_cq("Q(a, b, c) :- R(a, b), S(b, c)")
UNION = parse_ucq(
    "Q(a, b, c) :- R(a, b), S(b, c) ; Q(a, b, c) :- R(a, b), T(b, c)"
)

# An operation: (which relation, insert?, value1, value2)
operation = st.tuples(
    st.booleans(), st.booleans(), st.integers(0, 4), st.integers(0, 3)
)
union_operation = st.tuples(
    st.integers(0, 2), st.booleans(), st.integers(0, 4), st.integers(0, 3)
)


def _materialize(live, names_columns):
    return Database([
        Relation(name, columns, sorted(live[name]))
        for name, columns in names_columns
    ])


@given(st.lists(operation, max_size=40), st.integers(0, 39))
@settings(max_examples=80, deadline=None)
def test_pinned_snapshot_equals_fresh_static_build_of_its_version(
    store, operations, pin_after
):
    """Pin the published snapshot mid-stream; finish the stream; the pin
    must still enumerate exactly like a CQIndex built on the database as
    it stood at pin time (count, order, and the access/inverted-access
    bijection), and the final snapshot like the final database."""
    db = Database([Relation("R", ("a", "b"), []), Relation("S", ("b", "c"), [])])
    index = DynamicCQIndex(QUERY, db, store=store)
    live = {"R": set(), "S": set()}
    shapes = [("R", ("a", "b")), ("S", ("b", "c"))]

    pinned = index.snapshot
    pinned_db = _materialize(live, shapes)
    for step, (use_r, is_insert, v1, v2) in enumerate(operations):
        relation = "R" if use_r else "S"
        row = (v1, v2)
        # Base relations are sets: re-inserts and absent deletes are
        # filtered like the service's Delta path filters them.
        if is_insert and row not in live[relation]:
            live[relation].add(row)
            index.insert(relation, row)
        elif not is_insert and row in live[relation]:
            live[relation].remove(row)
            index.delete(relation, row)
        if step == pin_after:
            pinned = index.snapshot
            pinned_db = _materialize(live, shapes)

    for snapshot, database in (
        (pinned, pinned_db),
        (index.snapshot, _materialize(live, shapes)),
    ):
        static = CQIndex(QUERY, database)
        want = list(static)
        assert snapshot.count == static.count
        assert list(snapshot) == want
        assert snapshot.batch(list(range(snapshot.count))) == want
        for position, answer in enumerate(want):
            assert snapshot.inverted_access(answer) == position


@given(st.lists(union_operation, max_size=25), st.integers(0, 24))
@settings(max_examples=40, deadline=None)
def test_pinned_union_snapshot_equals_fresh_static_union_of_its_version(
    store, operations, pin_after
):
    """The mc-UCQ variant: a pinned union snapshot enumerates (in
    Durand–Strozecki order) exactly like a fresh static MCUCQIndex over
    the database at pin time, across the whole 2^m family."""
    db = Database([
        Relation("R", ("a", "b"), []),
        Relation("S", ("b", "c"), []),
        Relation("T", ("b", "c"), []),
    ])
    index = MCUCQIndex(UNION, db, dynamic=True, store=store)
    names = ["R", "S", "T"]
    live = {name: set() for name in names}
    shapes = [("R", ("a", "b")), ("S", ("b", "c")), ("T", ("b", "c"))]

    pinned = index.snapshot
    pinned_db = _materialize(live, shapes)
    for step, (which, is_insert, v1, v2) in enumerate(operations):
        relation = names[which]
        row = (v1, v2)
        if is_insert and row not in live[relation]:
            live[relation].add(row)
            index.insert(relation, row)
        elif not is_insert and row in live[relation]:
            live[relation].remove(row)
            index.delete(relation, row)
        if step == pin_after:
            pinned = index.snapshot
            pinned_db = _materialize(live, shapes)

    for snapshot, database in (
        (pinned, pinned_db),
        (index.snapshot, _materialize(live, shapes)),
    ):
        static = MCUCQIndex(UNION, database)
        want = list(static)
        assert snapshot.count == static.count
        assert list(snapshot) == want
        assert snapshot.batch(list(range(snapshot.count))) == want
