"""Property-based tests for the random-access index (Algorithms 2–4).

Strategy: random databases over small value domains, joined by a family of
free-connex query shapes (chains, stars, projections, cartesian products,
self-joins). Invariants, against the naive evaluator:

* ``count`` equals the true answer count;
* ``access`` enumerates exactly the answer set, without repetitions;
* ``inverted_access ∘ access = id`` and non-answers map to ``None``.
"""

import random

from hypothesis import given, settings, strategies as st

from repro import CQIndex, Database, Relation, parse_cq
from repro.database.joins import evaluate_cq


def relation_strategy(name, columns, domain=4, max_rows=12):
    row = st.tuples(*(st.integers(0, domain - 1) for __ in columns))
    return st.lists(row, max_size=max_rows).map(
        lambda rows: Relation(name, columns, rows)
    )


QUERY_SHAPES = [
    # (query text, relation schemas)
    ("Q(a, b, c) :- R(a, b), S(b, c)", {"R": ("x", "y"), "S": ("x", "y")}),
    ("Q(a) :- R(a, b), S(b, c)", {"R": ("x", "y"), "S": ("x", "y")}),
    ("Q(a, b) :- R(a, b), S(b, c), T(b, d)", {"R": ("x", "y"), "S": ("x", "y"), "T": ("x", "y")}),
    ("Q(a, d) :- R(a, b), S(b, c), T(c, d)", None),  # not free-connex: skipped below
    ("Q(a, b, c, d) :- R(a, b), S(c, d)", {"R": ("x", "y"), "S": ("x", "y")}),
    ("Q(a, b, c) :- R(a, b), R(b, c)", {"R": ("x", "y")}),
    ("Q(a) :- R(a, a)", {"R": ("x", "y")}),
    ("Q(a, b) :- R(a, b), S(b, 1)", {"R": ("x", "y"), "S": ("x", "y")}),
]
FREE_CONNEX_SHAPES = [
    (text, schemas) for text, schemas in QUERY_SHAPES if schemas is not None
]


@st.composite
def database_and_query(draw):
    text, schemas = draw(st.sampled_from(FREE_CONNEX_SHAPES))
    relations = [draw(relation_strategy(name, cols)) for name, cols in schemas.items()]
    return parse_cq(text), Database(relations)


@given(database_and_query())
@settings(max_examples=120, deadline=None)
def test_count_matches_naive_evaluation(case):
    query, db = case
    index = CQIndex(query, db)
    assert index.count == len(evaluate_cq(query, db))


@given(database_and_query())
@settings(max_examples=80, deadline=None)
def test_access_enumerates_answer_set_without_repetition(case):
    query, db = case
    index = CQIndex(query, db)
    answers = [index.access(i) for i in range(index.count)]
    assert len(set(answers)) == len(answers)
    assert set(answers) == evaluate_cq(query, db)


@given(database_and_query())
@settings(max_examples=80, deadline=None)
def test_inverted_access_inverts_access(case):
    query, db = case
    index = CQIndex(query, db)
    for position in range(index.count):
        assert index.inverted_access(index.access(position)) == position


@given(database_and_query(), st.integers(0, 2**16))
@settings(max_examples=60, deadline=None)
def test_non_answers_are_rejected(case, salt):
    query, db = case
    index = CQIndex(query, db)
    truth = evaluate_cq(query, db)
    rng = random.Random(salt)
    arity = len(query.head)
    for __ in range(10):
        candidate = tuple(rng.randrange(6) for __ in range(arity))
        expected = candidate in truth
        assert (index.inverted_access(candidate) is not None) == expected


@given(database_and_query())
@settings(max_examples=50, deadline=None)
def test_ordered_enumeration_matches_access_order(case):
    query, db = case
    index = CQIndex(query, db)
    assert list(index) == [index.access(i) for i in range(index.count)]


@given(database_and_query(), st.integers(0, 2**32 - 1))
@settings(max_examples=50, deadline=None)
def test_random_order_is_a_permutation(case, seed):
    query, db = case
    index = CQIndex(query, db)
    out = list(index.random_order(random.Random(seed)))
    assert sorted(out) == sorted(index)
