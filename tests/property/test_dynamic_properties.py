"""Property-based testing of the dynamic index: arbitrary update sequences
must leave it agreeing with naive evaluation of the resulting database.

Every test takes the ``store`` fixture, so the whole contract runs once
per bucket backend (tuple object treaps, flat slab treaps)."""

from hypothesis import given, settings, strategies as st

from repro import CQIndex, Database, DynamicCQIndex, Relation, parse_cq
from repro.database.joins import evaluate_cq

QUERY = parse_cq("Q(a, b, c) :- R(a, b), S(b, c)")

# An operation: (which relation, insert?, value1, value2)
operation = st.tuples(
    st.booleans(), st.booleans(), st.integers(0, 4), st.integers(0, 3)
)


@given(st.lists(operation, max_size=60))
@settings(max_examples=100, deadline=None)
def test_update_sequences_match_naive_evaluation(store, operations):
    db = Database([Relation("R", ("a", "b"), []), Relation("S", ("b", "c"), [])])
    index = DynamicCQIndex(QUERY, db, store=store)
    live = {"R": set(), "S": set()}

    for use_r, is_insert, v1, v2 in operations:
        relation = "R" if use_r else "S"
        row = (v1, v2)
        if is_insert:
            if row not in live[relation]:
                live[relation].add(row)
                index.insert(relation, row)
        else:
            if row in live[relation]:
                live[relation].remove(row)
                index.delete(relation, row)

    current = Database([
        Relation("R", ("a", "b"), sorted(live["R"])),
        Relation("S", ("b", "c"), sorted(live["S"])),
    ])
    truth = evaluate_cq(QUERY, current)
    assert index.count == len(truth)
    answers = [index.access(i) for i in range(index.count)]
    assert set(answers) == truth
    assert len(set(answers)) == len(answers)
    for position, answer in enumerate(answers):
        assert index.inverted_access(answer) == position


def _bucket_footprint(index: DynamicCQIndex):
    buckets = rows = 0
    stack = list(index.roots)
    while stack:
        node = stack.pop()
        buckets += len(node.buckets)
        rows += sum(len(bucket) for bucket in node.buckets.values())
        stack.extend(node.children)
    return buckets, rows


@given(st.lists(operation, max_size=25))
@settings(max_examples=60, deadline=None)
def test_interleaved_ops_agree_with_fresh_static_index_every_step(
    store, operations
):
    """After *every* step — including no-op deletes, which are applied to
    the index on purpose — the dynamic index must agree with a freshly
    built CQIndex on count, the answer set (its batched enumeration), and
    the access/inverted-access bijection; and no-op deletes must not grow
    the bucket tables."""
    db = Database([Relation("R", ("a", "b"), []), Relation("S", ("b", "c"), [])])
    index = DynamicCQIndex(QUERY, db, store=store)
    live = {"R": set(), "S": set()}

    for use_r, is_insert, v1, v2 in operations:
        relation = "R" if use_r else "S"
        row = (v1, v2)
        if is_insert:
            if row in live[relation]:
                continue
            live[relation].add(row)
            index.insert(relation, row)
        else:
            if row in live[relation]:
                live[relation].remove(row)
                index.delete(relation, row)
            else:
                # A genuine no-op delete, driven through the index: it must
                # change nothing — in particular allocate no bucket.
                before = _bucket_footprint(index)
                index.delete(relation, row)
                assert _bucket_footprint(index) == before

        current = Database([
            Relation("R", ("a", "b"), sorted(live["R"])),
            Relation("S", ("b", "c"), sorted(live["S"])),
        ])
        static = CQIndex(QUERY, current)
        assert index.count == static.count
        enumeration = index.batch(range(index.count))
        assert enumeration == [index.access(i) for i in range(index.count)]
        # Canonical order is *maintained* under churn (order-maintained
        # buckets): the mutated dynamic index agrees with a fresh static
        # build position for position, not just as a set.
        assert enumeration == static.batch(range(static.count))
        for position, answer in enumerate(enumeration):
            assert index.inverted_access(answer) == position
            assert static.inverted_access(answer) == position

    # And the live instance still enumerates exactly like a from-scratch
    # dynamic build over the final contents.
    final = Database([
        Relation("R", ("a", "b"), sorted(live["R"])),
        Relation("S", ("b", "c"), sorted(live["S"])),
    ])
    assert list(index) == list(DynamicCQIndex(QUERY, final, store=store))
