"""Property tests for the batched access engine (PR: batch + cache).

Invariants, over random free-connex queries and random databases:

* ``index.batch(positions) == [index.access(i) for i in positions]`` for
  arbitrary position lists — unsorted, duplicate-containing, empty;
* ``sample_many(k, rng)`` equals ``k`` sequential draws from a
  ``RandomPermutationEnumerator`` under the same seeded rng (same values,
  same order, same randomness consumed);
* the union variants (``MCUCQIndex.batch`` / ``sample_many`` and
  ``UnionRandomEnumerator.take``) match their scalar counterparts.

Two query sources: the fixed shape pool shared with
``test_index_properties`` (covers projections, self-joins, cartesian
forests, constants) and fully random join trees from
``repro.workloads.generators.random_acyclic_query``.
"""

import itertools
import random

import pytest
from hypothesis import given, settings, strategies as st

from repro import CQIndex, Database, MCUCQIndex, Relation, parse_cq, parse_ucq
from repro.core.errors import OutOfBoundError
from repro.core.permutation import RandomPermutationEnumerator
from repro.core.union_enum import UnionRandomEnumerator
from repro.workloads.generators import random_acyclic_query, random_database


def relation_strategy(name, columns, domain=4, max_rows=12):
    row = st.tuples(*(st.integers(0, domain - 1) for __ in columns))
    return st.lists(row, max_size=max_rows).map(
        lambda rows: Relation(name, columns, rows)
    )


QUERY_SHAPES = [
    ("Q(a, b, c) :- R(a, b), S(b, c)", {"R": ("x", "y"), "S": ("x", "y")}),
    ("Q(a) :- R(a, b), S(b, c)", {"R": ("x", "y"), "S": ("x", "y")}),
    ("Q(a, b) :- R(a, b), S(b, c), T(b, d)",
     {"R": ("x", "y"), "S": ("x", "y"), "T": ("x", "y")}),
    ("Q(a, b, c, d) :- R(a, b), S(c, d)", {"R": ("x", "y"), "S": ("x", "y")}),
    ("Q(a, b, c) :- R(a, b), R(b, c)", {"R": ("x", "y")}),
    ("Q(a) :- R(a, a)", {"R": ("x", "y")}),
    ("Q(a, b) :- R(a, b), S(b, 1)", {"R": ("x", "y"), "S": ("x", "y")}),
    ("Q(h, x, y, w) :- R(h, x), S(h, y), T(h, w)",
     {"R": ("x", "y"), "S": ("x", "y"), "T": ("x", "y")}),
]


@st.composite
def database_and_query(draw):
    text, schemas = draw(st.sampled_from(QUERY_SHAPES))
    relations = [draw(relation_strategy(name, cols)) for name, cols in schemas.items()]
    return parse_cq(text), Database(relations)


@st.composite
def positions_for(draw, count, max_size=30):
    if count == 0:
        return []
    return draw(st.lists(st.integers(0, count - 1), max_size=max_size))


@given(database_and_query(), st.data())
@settings(max_examples=120, deadline=None)
def test_batch_equals_scalar_loop(store, case, data):
    query, db = case
    index = CQIndex(query, db, store=store)
    positions = data.draw(positions_for(index.count))
    assert index.batch(positions) == [index.access(i) for i in positions]


@given(st.integers(0, 2**32 - 1), st.integers(1, 4), st.booleans(), st.data())
@settings(max_examples=60, deadline=None)
def test_batch_on_random_acyclic_queries(store, seed, atoms, full, data):
    rng = random.Random(seed)
    query = random_acyclic_query(atoms, rng, full=full)
    db = random_database(query, rng, rows_per_relation=12, domain=4)
    index = CQIndex(query, db, store=store)
    positions = data.draw(positions_for(index.count, max_size=40))
    assert index.batch(positions) == [index.access(i) for i in positions]


@given(database_and_query())
@settings(max_examples=40, deadline=None)
def test_batch_covers_full_range_shuffled(store, case):
    query, db = case
    index = CQIndex(query, db, store=store)
    positions = list(range(index.count)) * 2
    random.Random(0).shuffle(positions)
    assert index.batch(positions) == [index.access(i) for i in positions]


@given(database_and_query(), st.integers(0, 2**32 - 1), st.integers(0, 40))
@settings(max_examples=80, deadline=None)
def test_sample_many_matches_sequential_renum_draws(store, case, seed, k):
    query, db = case
    index = CQIndex(query, db, store=store)
    sequential = list(itertools.islice(
        RandomPermutationEnumerator(index, rng=random.Random(seed)), k))
    assert index.sample_many(k, random.Random(seed)) == sequential


@given(database_and_query(), st.integers(-5, 5))
@settings(max_examples=30, deadline=None)
def test_batch_out_of_bounds_is_all_or_nothing(store, case, offset):
    query, db = case
    index = CQIndex(query, db, store=store)
    bad = index.count + max(offset, 0) if offset >= 0 else offset
    with pytest.raises(OutOfBoundError):
        index.batch([0] * min(index.count, 1) + [bad])
    assert index.batch([]) == []


UNION_TEXT = "Q(x, y) :- R(x, y) ; Q(x, y) :- T(x, y)"


@given(
    relation_strategy("R", ("x", "y")),
    relation_strategy("T", ("x", "y")),
    st.integers(0, 2**32 - 1),
)
@settings(max_examples=60, deadline=None)
def test_union_batch_and_sample_match_scalars(store, r, t, seed):
    db = Database([r, t])
    index = MCUCQIndex(parse_ucq(UNION_TEXT), db, store=store)
    rng = random.Random(seed)
    positions = [rng.randrange(index.count) for __ in range(10)] if index.count else []
    assert index.batch(positions) == [index.access(i) for i in positions]
    k = min(5, index.count)
    want = list(itertools.islice(index.random_order(random.Random(seed)), k))
    assert index.sample_many(k, random.Random(seed)) == want


@given(
    relation_strategy("R", ("x", "y")),
    relation_strategy("T", ("x", "y")),
    st.integers(0, 2**32 - 1),
    st.integers(0, 30),
)
@settings(max_examples=60, deadline=None)
def test_union_enumerator_take_matches_sequential_next(r, t, seed, k):
    db = Database([r, t])
    queries = [parse_cq("Q(x, y) :- R(x, y)"), parse_cq("Q(x, y) :- T(x, y)")]

    def build(seeded):
        indexes = [CQIndex(q, db) for q in queries]
        return UnionRandomEnumerator.for_indexes(indexes, rng=random.Random(seeded))

    sequential = list(itertools.islice(build(seed), k))
    assert build(seed).take(k) == sequential
