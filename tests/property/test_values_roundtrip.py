"""Property tests for the canonical scalar encoding (PR: durability).

The contract: ``decode_cell`` is a left inverse of ``encode_cell`` on
the whole scalar domain — including every adversarial string (numeric
lookalikes, JSON literals, quote-leading text, whitespace padding,
unicode) — and the full CSV pipeline (encode → csv.writer → csv.reader →
decode) preserves rows exactly. ``nan`` is the one non-``==`` value; it
round-trips to a ``nan``.
"""

import csv
import io
import math

from hypothesis import given, settings, strategies as st

from repro.storage.values import decode_cell, decode_row, encode_cell, encode_row

scalars = st.one_of(
    st.none(),
    st.booleans(),
    st.integers(),
    st.floats(allow_nan=False),  # nan tested separately (nan != nan)
    st.text(max_size=40),
)

#: Strings engineered to collide with other encodings if the escape
#: hatch mis-fires.
tricky_text = st.one_of(
    st.text(max_size=40),
    st.sampled_from([
        "null", "true", "false", "None", "True", "nan", "inf", "-inf",
        "1", "-1", "007", "1_000", " 1", "1 ", "\t2\n", "2.5", "1e5",
        "0x10", '"', '""', '"x"', '"1"', "a,b", "a\nb", "'quoted'",
    ]),
    st.from_regex(r'"?-?[0-9_]{1,12}(\.[0-9]{0,6})?([eE][+-]?[0-9]{1,3})?"?',
                  fullmatch=True),
)


def equivalent(a, b):
    if isinstance(a, float) and isinstance(b, float):
        return (math.isnan(a) and math.isnan(b)) or a == b
    return type(a) is type(b) and a == b


@given(scalars)
@settings(max_examples=300)
def test_cell_round_trip(value):
    assert equivalent(decode_cell(encode_cell(value)), value)


@given(tricky_text)
@settings(max_examples=300)
def test_adversarial_strings_round_trip(text):
    assert decode_cell(encode_cell(text)) == text
    assert isinstance(decode_cell(encode_cell(text)), str)


def test_nan_round_trips():
    assert math.isnan(decode_cell(encode_cell(float("nan"))))


@given(st.lists(scalars, min_size=1, max_size=6))
@settings(max_examples=200)
def test_full_csv_pipeline_round_trip(row):
    buffer = io.StringIO()
    csv.writer(buffer, lineterminator="\n").writerow(
        [encode_cell(v) for v in row]
    )
    [cells] = list(csv.reader(io.StringIO(buffer.getvalue())))
    decoded = [decode_cell(c) for c in cells]
    assert len(decoded) == len(row)
    assert all(equivalent(a, b) for a, b in zip(decoded, row))


@given(st.lists(scalars, max_size=6))
@settings(max_examples=200)
def test_row_json_round_trip(row):
    import json

    wire = json.loads(json.dumps(encode_row(tuple(row))))
    decoded = decode_row(wire)
    assert len(decoded) == len(row)
    assert all(equivalent(a, b) for a, b in zip(decoded, row))


@given(scalars, scalars)
@settings(max_examples=300)
def test_encoding_is_injective(a, b):
    # Distinct values never share an encoding (else a persisted fact
    # could silently alias another).
    if not equivalent(a, b):
        assert encode_cell(a) != encode_cell(b)
