"""Property-based tests for the union machinery (Algorithms 5–8)."""

import random

from hypothesis import given, settings, strategies as st

from repro import (
    CQIndex,
    Database,
    MCUCQIndex,
    Relation,
    UnionRandomEnumerator,
    parse_ucq,
)
from repro.database.joins import evaluate_ucq

UNION2 = "Q(a, b, c) :- R1(a, b), S(b, c) ; Q(a, b, c) :- R2(a, b), S(b, c)"
UNION3 = UNION2 + " ; Q(a, b, c) :- R3(a, b), S(b, c)"


def _pairs(max_size=14):
    return st.lists(
        st.tuples(st.integers(0, 5), st.integers(0, 2)), max_size=max_size
    )


@st.composite
def union_case(draw, members=2):
    names = ["R1", "R2", "R3"][:members]
    relations = [Relation(n, ("a", "b"), draw(_pairs())) for n in names]
    relations.append(
        Relation("S", ("b", "c"), draw(st.lists(
            st.tuples(st.integers(0, 2), st.integers(0, 2)), max_size=8
        )))
    )
    text = UNION2 if members == 2 else UNION3
    return parse_ucq(text), Database(relations)


@given(union_case(members=2), st.integers(0, 2**32 - 1))
@settings(max_examples=60, deadline=None)
def test_algorithm5_emits_union_exactly(case, seed):
    ucq, db = case
    truth = evaluate_ucq(ucq, db)
    enum = UnionRandomEnumerator.for_indexes(
        [CQIndex(q, db) for q in ucq.queries], rng=random.Random(seed)
    )
    out = list(enum)
    assert set(out) == truth
    assert len(out) == len(truth)
    # Amortized-constant argument: at most one rejection per answer overall.
    assert enum.iterations <= 2 * max(1, len(truth))


@given(union_case(members=3), st.integers(0, 2**32 - 1))
@settings(max_examples=40, deadline=None)
def test_algorithm5_three_members(case, seed):
    ucq, db = case
    truth = evaluate_ucq(ucq, db)
    enum = UnionRandomEnumerator.for_indexes(
        [CQIndex(q, db) for q in ucq.queries], rng=random.Random(seed)
    )
    out = list(enum)
    assert set(out) == truth and len(out) == len(truth)


@given(union_case(members=2))
@settings(max_examples=60, deadline=None)
def test_mcucq_access_bijective_onto_union(case):
    ucq, db = case
    truth = evaluate_ucq(ucq, db)
    index = MCUCQIndex(ucq, db)
    assert index.count == len(truth)
    answers = [index.access(i) for i in range(index.count)]
    assert set(answers) == truth
    assert len(set(answers)) == len(answers)


@given(union_case(members=3))
@settings(max_examples=30, deadline=None)
def test_mcucq_matches_durand_strozecki_order(case):
    ucq, db = case
    index = MCUCQIndex(ucq, db)
    assert list(index) == [index.access(i) for i in range(index.count)]


@given(union_case(members=2))
@settings(max_examples=40, deadline=None)
def test_intersection_order_compatible_with_members(case):
    ucq, db = case
    index = MCUCQIndex(ucq, db)
    member = index.member_indexes[0]
    subset = index.intersection_indexes[(0, frozenset({1}))]
    member_rank = {answer: i for i, answer in enumerate(member)}
    ranks = [member_rank[answer] for answer in subset]
    assert ranks == sorted(ranks)
