"""Property-based testing of the batched write path: ``apply_delta`` must
leave every index *identical* to applying the same operations one by one —
count, full enumeration order (order-level, not just set-level), inverted
access, and for a dynamic union every member and intersection forest —
including cancelling insert/delete pairs and no-ops, which the Delta
normalization collapses and the one-by-one path actually executes."""

import random

from hypothesis import given, settings, strategies as st

from repro import (
    Database,
    Delta,
    DynamicCQIndex,
    MCUCQIndex,
    QueryService,
    Relation,
    parse_cq,
    parse_ucq,
)

CQ = parse_cq("Q(a, b, c) :- R(a, b), S(b, c)")
UCQ = parse_ucq(
    "Q(a, b, c) :- R(a, b), S(b, c) ; Q(a, b, c) :- R(a, b), T(b, c)"
)

RELATIONS = ("R", "S", "T")

# An operation: (relation choice, insert?, value1, value2). The domain is
# tiny so ops frequently collide — yielding genuine no-ops (re-inserting a
# present fact, deleting an absent one), revivals, and cancelling
# insert-then-delete pairs within one batch.
operation = st.tuples(
    st.integers(0, 2), st.booleans(), st.integers(0, 3), st.integers(0, 2)
)


def fresh_db() -> Database:
    return Database([
        Relation("R", ("a", "b"), [(0, 0), (1, 1), (2, 0)]),
        Relation("S", ("b", "c"), [(0, 0), (1, 2)]),
        Relation("T", ("b", "c"), [(0, 0), (0, 2)]),
    ])


def as_ops(operations):
    return [
        ("insert" if is_insert else "delete", RELATIONS[which], (v1, v2))
        for which, is_insert, v1, v2 in operations
    ]


def assert_same_forest(batched, sequential):
    """Order-level agreement plus the inverted-access bijection."""
    assert batched.count == sequential.count
    answers = list(batched)
    assert answers == list(sequential)
    for position, answer in enumerate(answers):
        assert batched.inverted_access(answer) == position
        assert sequential.inverted_access(answer) == position


@given(st.lists(operation, max_size=30))
@settings(max_examples=60, deadline=None)
def test_cq_apply_delta_matches_one_by_one(operations):
    ops = as_ops(operations)
    db_seq, db_bat = fresh_db(), fresh_db()
    sequential = DynamicCQIndex(CQ, db_seq)
    batched = DynamicCQIndex(CQ, db_bat)

    # One by one, database-gated exactly like the service's per-fact path
    # (the index contract: inserts are new facts, deletes may be no-ops).
    for op, relation, row in ops:
        if getattr(db_seq, op)(relation, row):
            getattr(sequential, op)(relation, row)
    # One batch: the database resolves the normalized delta into its
    # effective sub-delta, which the index absorbs in one pass.
    result = db_bat.apply(Delta(ops, database=db_bat))
    batched.apply_delta(result.effective)

    assert db_seq.relation("R").row_set() == db_bat.relation("R").row_set()
    assert_same_forest(batched, sequential)


@given(st.lists(operation, max_size=25))
@settings(max_examples=40, deadline=None)
def test_union_apply_delta_matches_one_by_one(operations):
    ops = as_ops(operations)
    db_seq, db_bat = fresh_db(), fresh_db()
    sequential = MCUCQIndex(UCQ, db_seq, dynamic=True)
    batched = MCUCQIndex(UCQ, db_bat, dynamic=True)

    for op, relation, row in ops:
        if getattr(db_seq, op)(relation, row):
            getattr(sequential, op)(relation, row)
    result = db_bat.apply(Delta(ops, database=db_bat))
    batched.apply_delta(result.effective)

    # The union surface: count and the full Durand–Strozecki order.
    assert batched.count == sequential.count
    assert [batched.access(i) for i in range(batched.count)] == \
        [sequential.access(i) for i in range(sequential.count)]
    # Every member index and every intersection forest, order-level.
    for member_b, member_s in zip(
        batched.member_indexes, sequential.member_indexes
    ):
        assert_same_forest(member_b, member_s)
    assert set(batched.intersection_indexes) == set(sequential.intersection_indexes)
    for key, forest in batched.intersection_indexes.items():
        assert_same_forest(forest, sequential.intersection_indexes[key])


@given(st.lists(operation, min_size=1, max_size=25), st.integers(0, 2**30))
@settings(max_examples=40, deadline=None)
def test_service_transaction_matches_per_fact_service(operations, seed):
    """Service-level equivalence: a transaction over a hot dynamic entry
    serves exactly like the same ops issued one service call at a time —
    pages, samples, and positions included."""
    ops = as_ops(operations)
    one_by_one = QueryService(fresh_db(), dynamic=True)
    transactional = QueryService(fresh_db(), dynamic=True)
    one_by_one.count(CQ)
    transactional.count(CQ)  # warm: the batch must hit the dynamic entry

    for op, relation, row in ops:
        getattr(one_by_one, op)(relation, row)
    with transactional.transaction() as txn:
        for op, relation, row in ops:
            getattr(txn, op)(relation, row)

    n = one_by_one.count(CQ)
    assert transactional.count(CQ) == n
    assert transactional.batch(CQ, range(n)) == one_by_one.batch(CQ, range(n))
    if n:
        rng_a, rng_b = random.Random(seed), random.Random(seed)
        k = min(5, n)
        assert transactional.sample(CQ, k, rng_a) == one_by_one.sample(CQ, k, rng_b)
        for position, answer in enumerate(one_by_one.batch(CQ, range(n))):
            assert transactional.position_of(CQ, answer) == position
    relevant = txn.result.effective.relations() & {"R", "S"}
    if txn.result.changed and relevant:
        stats = transactional.stats()
        if len(txn.result.effective) == 1:
            # A one-fact effective delta rides the per-fact hot path.
            assert stats.in_place_updates == 1
            assert stats.batched_updates == 0
        else:
            assert stats.batched_updates == 1
            assert stats.in_place_updates == 0
            assert stats.batched_update_ops == len(txn.result.effective)
