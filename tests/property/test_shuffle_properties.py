"""Property-based tests (hypothesis) for Algorithm 1."""

import random

from hypothesis import given, settings, strategies as st

from repro.core.shuffle import LazyShuffle


@given(n=st.integers(min_value=0, max_value=500), seed=st.integers(0, 2**32 - 1))
@settings(max_examples=80)
def test_always_a_permutation(n, seed):
    out = list(LazyShuffle(n, random.Random(seed)))
    assert sorted(out) == list(range(n))


@given(n=st.integers(min_value=1, max_value=200), seed=st.integers(0, 2**32 - 1))
@settings(max_examples=50)
def test_prefix_is_duplicate_free(n, seed):
    shuffle = LazyShuffle(n, random.Random(seed))
    prefix = [next(shuffle) for __ in range(n // 2 + 1)]
    assert len(set(prefix)) == len(prefix)
    assert all(0 <= v < n for v in prefix)


@given(n=st.integers(min_value=0, max_value=300), seed=st.integers(0, 2**32 - 1))
@settings(max_examples=50)
def test_memory_bounded_by_emissions(n, seed):
    shuffle = LazyShuffle(n, random.Random(seed))
    emitted = 0
    for __ in shuffle:
        emitted += 1
        assert len(shuffle._cells) <= 2 * emitted
