"""Property-based tests for the columnar serve-blob format.

Strategy: random databases whose non-join columns range over the whole
canonical-codec scalar domain (None, bool, int, float, str), indexed by
the flat backend, pushed through ``write_serve_entry``/``load_serve_entry``
(and ``write_frozen_tree``/``load_frozen_tree`` for the treap slabs).
Invariant: the loaded entry is **bit-exact** — every answer cell equal
*and of the same type* (True is not 1, 1 is not 1.0), every rank and
inverted lookup unchanged — because recovery that silently perturbs a
value is worse than recovery that fails.
"""

import pathlib
import shutil
import tempfile

import pytest

np = pytest.importorskip("numpy")

from hypothesis import given, settings, strategies as st

from repro import CQIndex, Database, Relation, parse_cq
from repro.core import flat_store
from repro.storage import serve_blob

QUERY = parse_cq("Q(a, b, c) :- R(a, b), S(b, c)")

#: The codec's whole scalar domain (mirrors test_values_roundtrip).
scalars = st.one_of(
    st.none(),
    st.booleans(),
    st.integers(),
    st.floats(allow_nan=False),
    st.text(max_size=40),
)

#: Small join-key domain so joins actually produce answers.
join_keys = st.integers(0, 3)


def identical(left, right):
    return type(left) is type(right) and left == right


@st.composite
def flat_database(draw):
    r_rows = draw(st.lists(st.tuples(scalars, join_keys), max_size=10))
    s_rows = draw(st.lists(st.tuples(join_keys, scalars), max_size=10))
    return Database([
        Relation("R", ("a", "b"), r_rows),
        Relation("S", ("b", "c"), s_rows),
    ])


def round_trip(entry, key=("k",)):
    workdir = pathlib.Path(tempfile.mkdtemp(prefix="serve_blob_prop_"))
    try:
        serve_blob.write_serve_entry(
            workdir / "e", key, entry,
            lambda path, payload: path.write_bytes(payload),
        )
        loaded_key, loaded = serve_blob.load_serve_entry(workdir / "e")
        assert loaded_key == key
        answers = list(loaded)
        # Materialize every deferred value table before the sidecar files
        # vanish with the workdir (zero answers never trigger a gather;
        # the mmapped slabs themselves survive the unlink).
        for root in loaded._forest.roots:
            for node in root.all_nodes():
                node.flat.tables
        return loaded, answers
    finally:
        shutil.rmtree(workdir, ignore_errors=True)


@given(flat_database())
@settings(max_examples=60, deadline=None)
def test_entry_round_trips_bit_exactly(database):
    entry = CQIndex(QUERY, database, store="flat")
    assert entry.store == "flat"  # no overflow at these sizes
    loaded, answers = round_trip(entry)

    originals = list(entry)
    assert loaded.count == entry.count == len(originals)
    assert len(answers) == len(originals)
    for original, answer in zip(originals, answers):
        assert len(original) == len(answer)
        for left, right in zip(original, answer):
            assert identical(left, right)


@given(flat_database())
@settings(max_examples=40, deadline=None)
def test_inverted_access_survives_round_trip(database):
    entry = CQIndex(QUERY, database, store="flat")
    loaded, answers = round_trip(entry)
    for position, answer in enumerate(answers):
        assert loaded.inverted_access(answer) == position


@given(flat_database())
@settings(max_examples=40, deadline=None)
def test_flat_slabs_and_tables_round_trip_losslessly(database):
    entry = CQIndex(QUERY, database, store="flat")
    loaded, __ = round_trip(entry)

    originals = [node.flat
                 for root in entry._forest.roots
                 for node in root.all_nodes()]
    recovered = [node.flat
                 for root in loaded._forest.roots
                 for node in root.all_nodes()]
    assert len(originals) == len(recovered)
    for original, clone in zip(originals, recovered):
        assert clone.columns == original.columns
        assert clone.uniform_stride == original.uniform_stride
        assert clone.bucket_base == original.bucket_base
        __, original_slabs, __ = original.to_slabs()
        __, clone_slabs, __ = clone.to_slabs()
        assert set(clone_slabs) == set(original_slabs)
        for name, slab in original_slabs.items():
            mirror = clone_slabs[name]
            assert np.asarray(mirror).dtype == np.asarray(slab).dtype
            assert np.array_equal(np.asarray(mirror), np.asarray(slab))
        for table, mirror in zip(original.tables, clone.tables):
            assert len(table) == len(mirror)
            for left, right in zip(table, mirror):
                assert identical(left, right)


#: Unique rows (the index cell) with codec-domain payloads and weights.
tree_rows = st.lists(
    st.tuples(scalars, st.integers(1, 50)), max_size=12
).map(lambda drawn: [((i, value), weight)
                     for i, (value, weight) in enumerate(drawn)])


@given(tree_rows)
@settings(max_examples=60, deadline=None)
def test_frozen_tree_round_trips_through_blob_format(rows):
    tree = flat_store.FlatOrderTree()
    for row, weight in rows:
        tree.insert_row(row, weight, 1)
    frozen = tree.snapshot()

    workdir = pathlib.Path(tempfile.mkdtemp(prefix="frozen_tree_prop_"))
    try:
        serve_blob.write_frozen_tree(
            workdir, frozen,
            lambda path, payload: path.write_bytes(payload),
        )
        loaded = serve_blob.load_frozen_tree(workdir)
        # The reader API lives on the snapshot store wrapping the tree.
        mirror = flat_store.FlatSnapshotStore(loaded)
        original = flat_store.FlatSnapshotStore(frozen)
        assert list(mirror.iter_rows()) == list(original.iter_rows())
        assert mirror.total == original.total
        for offset in range(original.total):
            assert mirror.locate_run(offset) == original.locate_run(offset)
        for row, __ in rows:
            assert mirror.rank_start(row) == original.rank_start(row)
        assert len(loaded.rows) == len(frozen.rows)
        for left, right in zip(loaded.rows, frozen.rows):
            assert len(left) == len(right)
            for a, b in zip(left, right):
                assert identical(a, b)
    finally:
        shutil.rmtree(workdir, ignore_errors=True)


def test_int64_overflow_falls_back_to_tuple_and_is_refused():
    # Deterministic edge, not hypothesis: a 10-atom star whose root
    # weight (100^10 ≈ 10^20) exceeds the 2^62 int64 guard. The flat
    # build falls back to tuple stores and the blob writer must refuse
    # the entry (its slabs could not hold the weights).
    atoms = ", ".join(f"R{i}(x, a{i})" for i in range(10))
    heads = ", ".join(f"a{i}" for i in range(10))
    query = parse_cq(f"Q(x, {heads}) :- {atoms}")
    database = Database([
        Relation(f"R{i}", ("x", "y"), [(0, j) for j in range(100)])
        for i in range(10)
    ])
    entry = CQIndex(query, database, store="flat")
    assert entry.store == "tuple"
    assert not serve_blob.can_blob(entry)
    assert entry.count == 100 ** 10
