"""Shared fixtures: small databases reused across the test suite."""

from __future__ import annotations

import pytest

from repro import Database, Relation
from repro.tpch import TPCHConfig, attach_derived_relations, generate


@pytest.fixture(params=["tuple", "flat"], scope="session")
def store(request) -> str:
    """Bucket backend under test — every contract test parameterized by
    this fixture runs once per backend (``flat`` skips without numpy).

    Session-scoped: the value is a constant string, which keeps
    hypothesis' function-scoped-fixture health check satisfied."""
    if request.param == "flat":
        pytest.importorskip("numpy")
    return request.param


@pytest.fixture()
def chain_db() -> Database:
    """A tiny chain-join database with dangling tuples on both sides."""
    return Database([
        Relation("R", ("a", "b"), [(1, 10), (2, 20), (3, 30), (4, 99)]),
        Relation("S", ("b", "c"), [(10, "x"), (10, "y"), (20, "z"), (77, "w")]),
    ])


@pytest.fixture()
def example44_db() -> Database:
    """The database of the paper's Example 4.4."""
    return Database([
        Relation(
            "R1",
            ("v", "w", "x"),
            [("a1", "b1", "c1"), ("a1", "b1", "c2"), ("a2", "b2", "c1"), ("a2", "b2", "c2")],
        ),
        Relation("R2", ("w", "y"), [("b1", "d1"), ("b1", "d2"), ("b2", "d2"), ("b2", "d3")]),
        Relation("R3", ("x", "z"), [("c1", "e1"), ("c1", "e2"), ("c1", "e3"), ("c2", "e4")]),
    ])


@pytest.fixture(scope="session")
def tiny_tpch() -> Database:
    """A very small TPC-H instance shared by the slower integration tests.

    Scale 0.002 with seed 9 gives 20 suppliers including both an American
    and a British one, so the UCQ benchmarks (QA ∪ QE, QS7 ∪ QC7) have
    nonempty members.
    """
    db = generate(TPCHConfig(scale_factor=0.002, seed=9))
    return attach_derived_relations(db)
