"""Tests for the dynamic index: Theorem 4.3's contract maintained under
inserts and deletes, checked against a freshly built static index."""

import random

import pytest

from repro import (
    CQIndex,
    Database,
    DynamicCQIndex,
    NotFreeConnexError,
    OutOfBoundError,
    Relation,
    parse_cq,
)
from repro.database.joins import evaluate_cq

QUERY = parse_cq("Q(a, b, c) :- R(a, b), S(b, c)")


def _db(rows_r=(), rows_s=()):
    return Database([
        Relation("R", ("a", "b"), rows_r),
        Relation("S", ("b", "c"), rows_s),
    ])


def _assert_matches_static(dynamic: DynamicCQIndex, database: Database):
    """The dynamic index must agree with ground truth in count, answer set,
    and the access/inverted-access bijection."""
    truth = evaluate_cq(dynamic.query, database)
    assert dynamic.count == len(truth)
    answers = [dynamic.access(i) for i in range(dynamic.count)]
    assert set(answers) == truth
    assert len(set(answers)) == len(answers)
    for position, answer in enumerate(answers):
        assert dynamic.inverted_access(answer) == position


class TestConstruction:
    def test_initial_load_matches_static(self):
        db = _db([(1, 10), (2, 20)], [(10, "x"), (10, "y"), (20, "z")])
        dynamic = DynamicCQIndex(QUERY, db)
        static = CQIndex(QUERY, db)
        assert dynamic.count == static.count
        assert {dynamic.access(i) for i in range(dynamic.count)} == set(static)

    def test_empty_start(self):
        dynamic = DynamicCQIndex(QUERY, _db())
        assert dynamic.count == 0
        with pytest.raises(OutOfBoundError):
            dynamic.access(0)

    def test_rejects_non_full_query(self):
        with pytest.raises(NotFreeConnexError):
            DynamicCQIndex(parse_cq("Q(a) :- R(a, b), S(b, c)"), _db())

    def test_rejects_non_free_connex(self):
        with pytest.raises(NotFreeConnexError):
            DynamicCQIndex(parse_cq("Q(a, c) :- R(a, b), S(b, c)"), _db())


class TestUpdates:
    def test_insert_extends_answers(self):
        db = _db([(1, 10)], [(10, "x")])
        dynamic = DynamicCQIndex(QUERY, db)
        assert dynamic.count == 1
        dynamic.insert("S", (10, "y"))
        db.relation("S").rows.append((10, "y"))
        _assert_matches_static(dynamic, db)
        assert dynamic.count == 2

    def test_insert_dangling_then_join_partner(self):
        dynamic = DynamicCQIndex(QUERY, _db())
        dynamic.insert("R", (1, 10))
        assert dynamic.count == 0  # dangling: no S partner yet
        dynamic.insert("S", (10, "x"))
        assert dynamic.count == 1
        assert dynamic.access(0) == (1, 10, "x")

    def test_delete_removes_answers(self):
        db = _db([(1, 10), (2, 10)], [(10, "x"), (10, "y")])
        dynamic = DynamicCQIndex(QUERY, db)
        assert dynamic.count == 4
        dynamic.delete("S", (10, "y"))
        assert dynamic.count == 2
        assert dynamic.inverted_access((1, 10, "y")) is None
        assert dynamic.inverted_access((1, 10, "x")) is not None

    def test_delete_then_reinsert_revives(self):
        db = _db([(1, 10)], [(10, "x")])
        dynamic = DynamicCQIndex(QUERY, db)
        dynamic.delete("R", (1, 10))
        assert dynamic.count == 0
        dynamic.insert("R", (1, 10))
        assert dynamic.count == 1
        assert dynamic.access(0) == (1, 10, "x")

    def test_duplicate_insert_is_multiplicity_not_duplicate_answer(self):
        dynamic = DynamicCQIndex(QUERY, _db([(1, 10)], [(10, "x")]))
        dynamic.insert("R", (1, 10))  # same fact again (set semantics)
        assert dynamic.count == 1
        dynamic.delete("R", (1, 10))  # one of two multiplicities remains
        assert dynamic.count == 1
        dynamic.delete("R", (1, 10))
        assert dynamic.count == 0

    def test_delete_never_inserted_is_noop(self):
        dynamic = DynamicCQIndex(QUERY, _db([(1, 10)], [(10, "x")]))
        dynamic.delete("R", (9, 99))
        dynamic.delete("S", (10, "zzz"))
        assert dynamic.count == 1

    def test_constants_filtered_on_insert(self):
        query = parse_cq("Q(a) :- R(a, 10)")
        dynamic = DynamicCQIndex(query, _db())
        dynamic.insert("R", (1, 10))
        dynamic.insert("R", (2, 20))  # fails the constant filter
        assert dynamic.count == 1
        assert dynamic.access(0) == (1,)

    def test_repeated_variable_atom(self):
        query = parse_cq("Q(a) :- E(a, a)")
        db = Database([Relation("E", ("u", "v"), [])])
        dynamic = DynamicCQIndex(query, db)
        dynamic.insert("E", (1, 1))
        dynamic.insert("E", (1, 2))  # filtered: u ≠ v
        assert dynamic.count == 1

    def test_self_join_updates_both_occurrences(self):
        query = parse_cq("Q(a, b, c) :- E(a, b), E(b, c)")
        db = Database([Relation("E", ("u", "v"), [(1, 2)])])
        dynamic = DynamicCQIndex(query, db)
        assert dynamic.count == 0
        dynamic.insert("E", (2, 3))
        assert dynamic.count == 1
        assert dynamic.access(0) == (1, 2, 3)
        dynamic.delete("E", (1, 2))
        assert dynamic.count == 0

    def test_arity_mismatch_rejected(self):
        dynamic = DynamicCQIndex(QUERY, _db())
        with pytest.raises(ValueError):
            dynamic.insert("R", (1, 2, 3))

    def test_three_level_propagation(self):
        query = parse_cq("Q(a, b, c, d) :- R(a, b), S(b, c), T(c, d)")
        db = Database([
            Relation("R", ("a", "b"), [(1, 10)]),
            Relation("S", ("b", "c"), [(10, 100)]),
            Relation("T", ("c", "d"), [(100, "x")]),
        ])
        dynamic = DynamicCQIndex(query, db)
        assert dynamic.count == 1
        # A leaf-level change must ripple through two ancestors.
        dynamic.insert("T", (100, "y"))
        assert dynamic.count == 2
        dynamic.delete("T", (100, "x"))
        dynamic.delete("T", (100, "y"))
        assert dynamic.count == 0
        dynamic.insert("T", (100, "z"))
        assert dynamic.count == 1
        assert dynamic.access(0) == (1, 10, 100, "z")


def _all_nodes(dynamic: DynamicCQIndex):
    stack = list(dynamic.roots)
    while stack:
        node = stack.pop()
        yield node
        stack.extend(node.children)


def _bucket_footprint(dynamic: DynamicCQIndex):
    """(total buckets, total stored rows) across every node."""
    buckets = rows = 0
    for node in _all_nodes(dynamic):
        buckets += len(node.buckets)
        rows += sum(len(bucket) for bucket in node.buckets.values())
    return buckets, rows


class TestNoOpDeleteRegression:
    def test_delete_miss_allocates_no_bucket(self):
        """Regression: deleting a never-inserted fact whose bucket key is
        also new must not allocate an empty bucket (the leak grew
        node.buckets unboundedly under delete-heavy no-op traffic)."""
        dynamic = DynamicCQIndex(QUERY, _db([(1, 10)], [(10, "x")]))
        before = _bucket_footprint(dynamic)
        for miss in range(50):
            dynamic.delete("S", (1000 + miss, "nope"))  # unseen bucket keys
            dynamic.delete("R", (1000 + miss, 2000 + miss))
        assert _bucket_footprint(dynamic) == before
        assert dynamic.count == 1

    def test_delete_miss_in_existing_bucket_stays_clean(self):
        dynamic = DynamicCQIndex(QUERY, _db([(1, 10)], [(10, "x")]))
        before = _bucket_footprint(dynamic)
        dynamic.delete("S", (10, "never-inserted"))  # existing bucket key
        assert _bucket_footprint(dynamic) == before
        assert dynamic.count == 1


class TestServingSurface:
    def _mutated_index(self):
        rng = random.Random(4)
        db = _db(
            [(i, i % 5) for i in range(40)],
            [(i % 5, i % 7) for i in range(30)],
        )
        dynamic = DynamicCQIndex(QUERY, db)
        for i in range(25):
            dynamic.insert("R", (100 + i, rng.randrange(5)))
            dynamic.delete("S", (rng.randrange(5), rng.randrange(7)))
        return dynamic

    def test_batch_equals_scalar_loop(self):
        dynamic = self._mutated_index()
        rng = random.Random(9)
        positions = [rng.randrange(dynamic.count) for __ in range(200)]
        positions += positions[:10]  # duplicates, unsorted
        assert dynamic.batch(positions) == [dynamic.access(i) for i in positions]
        assert dynamic.batch([]) == []

    def test_batch_out_of_bound_is_all_or_nothing(self):
        dynamic = self._mutated_index()
        with pytest.raises(OutOfBoundError):
            dynamic.batch([0, dynamic.count])
        with pytest.raises(OutOfBoundError):
            dynamic.batch([-1])

    def test_sample_many_equals_sequential_renum(self):
        from repro.core.permutation import RandomPermutationEnumerator

        dynamic = self._mutated_index()
        sampled = dynamic.sample_many(50, random.Random(3))
        enumerator = RandomPermutationEnumerator(dynamic, rng=random.Random(3))
        assert sampled == [next(enumerator) for __ in range(50)]

    def test_random_order_is_a_permutation(self):
        dynamic = self._mutated_index()
        answers = list(dynamic.random_order(random.Random(8)))
        assert sorted(answers) == sorted(dynamic)

    def test_fresh_build_matches_static_enumeration_order(self):
        """The canonical initial load: before any post-build mutation, the
        dynamic index enumerates exactly like the static index, so
        promoting a hot query does not reshuffle already-served pages."""
        db = _db(
            [(3, 10), (1, 10), (2, 20), (5, 20)],
            [(20, "z"), (10, "y"), (10, "x")],
        )
        assert list(DynamicCQIndex(QUERY, db)) == list(CQIndex(QUERY, db))

    def test_membership_and_parity_helpers(self):
        dynamic = DynamicCQIndex(QUERY, _db([(1, 10)], [(10, "x")]))
        assert (1, 10, "x") in dynamic
        assert (1, 10, "nope") not in dynamic
        dynamic.ensure_inverted_support()  # interface parity no-op


class TestRandomizedAgainstGroundTruth:
    @pytest.mark.parametrize("seed", [0, 1, 2])
    def test_update_storm(self, seed):
        """Hundreds of random inserts/deletes; full contract re-checked
        periodically against naive evaluation of the current database."""
        rng = random.Random(seed)
        db = _db()
        dynamic = DynamicCQIndex(QUERY, db)
        live_r, live_s = [], []
        for step in range(300):
            action = rng.random()
            if action < 0.45 or not (live_r or live_s):
                row = (rng.randrange(6), rng.randrange(4))
                if row not in live_r:
                    dynamic.insert("R", row)
                    live_r.append(row)
                    db.relation("R").rows.append(row)
            elif action < 0.75:
                row = (rng.randrange(4), rng.randrange(5))
                if row not in live_s:
                    dynamic.insert("S", row)
                    live_s.append(row)
                    db.relation("S").rows.append(row)
            elif live_r and action < 0.9:
                row = live_r.pop(rng.randrange(len(live_r)))
                dynamic.delete("R", row)
                db.relation("R").rows.remove(row)
            elif live_s:
                row = live_s.pop(rng.randrange(len(live_s)))
                dynamic.delete("S", row)
                db.relation("S").rows.remove(row)
            if step % 50 == 49:
                _assert_matches_static(dynamic, db)
        _assert_matches_static(dynamic, db)
