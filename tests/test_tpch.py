"""Tests for the TPC-H substrate: generator invariants and query objects."""

import pytest

from repro.tpch import (
    NATIONS,
    REGIONS,
    TPCHConfig,
    attach_derived_relations,
    generate,
    table_columns,
    tpch_cq,
    tpch_ucq,
)
from repro.tpch.queries import (
    CQ_QUERIES,
    NATIONKEY_UNITED_KINGDOM,
    NATIONKEY_UNITED_STATES,
    UCQ_QUERIES,
)


class TestSchema:
    def test_official_nation_keys(self):
        assert NATIONS[NATIONKEY_UNITED_STATES][0] == "UNITED STATES"
        assert NATIONS[NATIONKEY_UNITED_KINGDOM][0] == "UNITED KINGDOM"
        assert len(NATIONS) == 25
        assert len(REGIONS) == 5

    def test_nation_regions_in_range(self):
        assert all(0 <= region < 5 for __, region in NATIONS)

    def test_table_columns(self):
        assert table_columns("lineitem") == (
            "l_orderkey", "l_linenumber", "l_partkey", "l_suppkey",
        )
        with pytest.raises(KeyError):
            table_columns("nope")


class TestGenerator:
    def test_cardinality_ratios(self, tiny_tpch):
        supplier = len(tiny_tpch.relation("supplier"))
        part = len(tiny_tpch.relation("part"))
        partsupp = len(tiny_tpch.relation("partsupp"))
        orders = len(tiny_tpch.relation("orders"))
        lineitem = len(tiny_tpch.relation("lineitem"))
        assert partsupp == 4 * part  # 4 suppliers per part
        assert part == 20 * supplier  # 200k : 10k per sf
        assert orders / lineitem == pytest.approx(1 / 4.0, rel=0.25)  # 1–7 lines

    def test_referential_integrity(self, tiny_tpch):
        suppliers = {r[0] for r in tiny_tpch.relation("supplier")}
        parts = {r[0] for r in tiny_tpch.relation("part")}
        customers = {r[0] for r in tiny_tpch.relation("customer")}
        orders = {r[0] for r in tiny_tpch.relation("orders")}
        partsupp = set(tiny_tpch.relation("partsupp").rows)

        for p, s in partsupp:
            assert p in parts and s in suppliers
        for o, c in tiny_tpch.relation("orders"):
            assert c in customers
        for o, __, p, s in tiny_tpch.relation("lineitem"):
            assert o in orders
            # dbgen invariant: lineitem's supplier stocks its part.
            assert (p, s) in partsupp

    def test_only_two_thirds_of_customers_order(self, tiny_tpch):
        customers = len(tiny_tpch.relation("customer"))
        ordering = {c for __, c in tiny_tpch.relation("orders")}
        assert max(ordering) <= int(customers * 2 / 3) + 1

    def test_deterministic_under_seed(self):
        a = generate(TPCHConfig(scale_factor=0.001, seed=5))
        b = generate(TPCHConfig(scale_factor=0.001, seed=5))
        assert a.relation("lineitem").rows == b.relation("lineitem").rows

    def test_scaling(self):
        small = generate(TPCHConfig(scale_factor=0.001, seed=1))
        large = generate(TPCHConfig(scale_factor=0.002, seed=1))
        assert len(large.relation("orders")) == 2 * len(small.relation("orders"))

    def test_derived_relations(self, tiny_tpch):
        us = tiny_tpch.relation("nation_us")
        assert us.rows == [(24, "UNITED STATES", 1)]
        uk = tiny_tpch.relation("nation_uk")
        assert uk.rows == [(23, "UNITED KINGDOM", 3)]
        evens = tiny_tpch.relation("part_even")
        assert all(r[0] % 2 == 0 for r in evens)


class TestQueries:
    def test_lookup_helpers(self):
        assert tpch_cq("Q3").name == "Q3"
        assert tpch_ucq("QA_or_QE").name == "QA_or_QE"
        with pytest.raises(KeyError):
            tpch_cq("Q99")

    def test_cq_bodies_reference_existing_tables(self, tiny_tpch):
        for name, make in CQ_QUERIES.items():
            for atom in make().body:
                assert atom.relation in tiny_tpch, (name, atom.relation)

    def test_ucq_bodies_reference_existing_tables(self, tiny_tpch):
        for name, make in UCQ_QUERIES.items():
            for member in make():
                for atom in member.body:
                    assert atom.relation in tiny_tpch, (name, atom.relation)

    def test_q7_is_a_self_join(self):
        assert not tpch_cq("Q7").is_self_join_free()

    def test_qa_qe_is_disjoint(self, tiny_tpch):
        from repro.database.joins import evaluate_cq

        ucq = tpch_ucq("QA_or_QE")
        a = evaluate_cq(ucq.queries[0], tiny_tpch)
        e = evaluate_cq(ucq.queries[1], tiny_tpch)
        assert not (a & e)

    def test_result_sizes_relative_shape(self, tiny_tpch):
        """Q0 and Q2 return one answer per partsupp row; Q3/Q7/Q9/Q10 one
        per lineitem (the keys added for set=bag equivalence)."""
        from repro import CQIndex

        partsupp = len(tiny_tpch.relation("partsupp"))
        lineitem = len(tiny_tpch.relation("lineitem"))
        assert CQIndex(tpch_cq("Q0"), tiny_tpch).count == partsupp
        assert CQIndex(tpch_cq("Q2"), tiny_tpch).count == partsupp
        for name in ("Q3", "Q7", "Q9", "Q10"):
            assert CQIndex(tpch_cq(name), tiny_tpch).count == lineitem, name
