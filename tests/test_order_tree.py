"""Tests for the order-maintained weighted tree backing dynamic buckets."""

import random

import pytest

from repro.core.order_tree import OrderedWeightTree, _descending_priorities
from repro.database.relation import row_sort_key


def _reference(entries):
    """Sorted (row, weight, multiplicity) triples — the model the tree
    must agree with."""
    return sorted(entries, key=lambda e: row_sort_key(e[0]))


def _check_against_reference(tree, rank, entries):
    reference = _reference(entries)
    assert len(tree) == len(reference)
    assert tree.total == sum(w for __, w, __m in reference)
    # In-order traversal reproduces the canonical row order.
    assert [n.row for n in tree] == [row for row, __, __m in reference]
    # prefix_of agrees with the running prefix sum; locate() inverts it for
    # every offset inside a positive-weight row's range.
    running = 0
    for row, weight, multiplicity in reference:
        node = rank[row]
        assert node.weight == weight
        assert node.multiplicity == multiplicity
        assert tree.prefix_of(node) == running
        for offset in (running, running + weight - 1):
            if weight > 0:
                located, start = tree.locate(offset)
                assert located is node
                assert start == running
        running += weight


class TestBulkBuild:
    def test_empty(self):
        tree, nodes = OrderedWeightTree.from_sorted([])
        assert tree.total == 0 and len(tree) == 0 and nodes == []
        with pytest.raises(IndexError):
            tree.locate(0)

    def test_build_matches_reference(self):
        entries = [((i, chr(97 + i % 3)), i % 4, 1) for i in range(50)]
        entries = _reference(entries)
        tree, nodes = OrderedWeightTree.from_sorted(entries)
        rank = {n.row: n for n in nodes}
        _check_against_reference(tree, rank, entries)

    def test_heap_invariant_holds_after_bulk_build(self):
        entries = _reference([((i,), 1, 1) for i in range(100)])
        tree, __ = OrderedWeightTree.from_sorted(entries)
        stack = [tree.root]
        while stack:
            node = stack.pop()
            for child in (node.left, node.right):
                if child is not None:
                    assert child.priority <= node.priority
                    assert child.parent is node
                    stack.append(child)

    def test_descending_priorities_are_sorted_uniforms(self):
        """The O(n) order-statistics generator: descending, in (0, 1],
        and distributed like sorted i.i.d. uniforms (spot-check: the
        median of the maximum of n uniforms is 2^(-1/n))."""
        priorities = _descending_priorities(500)
        assert len(priorities) == 500
        assert all(0.0 < p <= 1.0 for p in priorities)
        assert priorities == sorted(priorities, reverse=True)
        assert len(set(priorities)) == 500  # ties would stall rotations
        maxima = [_descending_priorities(16)[0] for __ in range(400)]
        median = sorted(maxima)[200]
        assert abs(median - 2 ** (-1 / 16)) < 0.05


class TestInsertSorted:
    def test_small_batch_uses_individual_inserts(self):
        tree, nodes = OrderedWeightTree.from_sorted(
            _reference([((i,), 1, 1) for i in range(0, 200, 2)])
        )
        rank = {n.row: n for n in nodes}
        kept_root_nodes = set(id(n) for n in tree)
        new = tree.insert_sorted(_reference([((5,), 2, 1), ((7,), 3, 1)]))
        for node in new:
            rank[node.row] = node
        entries = [((i,), 1, 1) for i in range(0, 200, 2)] + \
            [((5,), 2, 1), ((7,), 3, 1)]
        _check_against_reference(tree, rank, _reference(entries))
        # Existing nodes were reused, not rebuilt.
        assert kept_root_nodes <= set(id(n) for n in tree)

    def test_large_batch_merge_rebuild_keeps_handles_valid(self):
        tree, nodes = OrderedWeightTree.from_sorted(
            _reference([((i, "x"), 1, 1) for i in range(0, 40, 4)])
        )
        rank = {n.row: n for n in nodes}
        batch = _reference([((i, "y"), 2, 1) for i in range(0, 40, 2)])
        new = tree.insert_sorted(batch)
        assert len(new) == len(batch)
        for node in new:
            rank[node.row] = node
        entries = [((i, "x"), 1, 1) for i in range(0, 40, 4)] + batch
        # Old handles still resolve: prefix_of/locate work through them.
        _check_against_reference(tree, rank, _reference(entries))

    def test_bulk_insert_into_empty_tree(self):
        tree, __ = OrderedWeightTree.from_sorted([])
        new = tree.insert_sorted(_reference([((i,), 1, 1) for i in range(9)]))
        assert [n.row for n in tree] == [(i,) for i in range(9)]
        assert tree.total == 9 and len(new) == 9

    def test_empty_batch_is_a_noop(self):
        tree, __ = OrderedWeightTree.from_sorted(_reference([((1,), 1, 1)]))
        assert tree.insert_sorted([]) == []
        assert tree.total == 1

    def test_heap_invariant_survives_merge_rebuild(self):
        tree, __ = OrderedWeightTree.from_sorted(
            _reference([((i,), 1, 1) for i in range(10)])
        )
        tree.insert_sorted(_reference([((i + 0.5,), 1, 1) for i in range(10)]))
        stack = [tree.root]
        while stack:
            node = stack.pop()
            for child in (node.left, node.right):
                if child is not None:
                    assert child.priority <= node.priority
                    assert child.parent is node
                    stack.append(child)


class TestUpdates:
    def test_insert_lands_at_canonical_position(self):
        tree, nodes = OrderedWeightTree.from_sorted(
            _reference([((0,), 1, 1), ((4,), 1, 1), ((8,), 1, 1)])
        )
        rank = {n.row: n for n in nodes}
        for value in (6, 2, 10, -1):
            rank[(value,)] = tree.insert_row((value,), 2, 1)
        entries = [((v,), 2 if v in (6, 2, 10, -1) else 1, 1)
                   for v in (-1, 0, 2, 4, 6, 8, 10)]
        _check_against_reference(tree, rank, entries)

    def test_set_weight_and_tombstones(self):
        entries = _reference([((i,), 1, 1) for i in range(6)])
        tree, nodes = OrderedWeightTree.from_sorted(entries)
        rank = {n.row: n for n in nodes}
        # Tombstone (2,): weight 0 keeps the survivors' prefixes compact.
        node = rank[(2,)]
        tree.set_weight(node, 0)
        node.multiplicity = 0
        assert tree.total == 5
        assert tree.prefix_of(rank[(3,)]) == 2  # (2,) no longer counts
        located, start = tree.locate(2)
        assert located is rank[(3,)] and start == 2

    def test_randomized_against_reference_model(self):
        rng = random.Random(7)
        tree, nodes = OrderedWeightTree.from_sorted([])
        rank = {}
        model = {}
        for step in range(400):
            action = rng.random()
            if action < 0.5 or not model:
                row = (rng.randrange(60), rng.randrange(3))
                if row not in model:
                    weight = rng.randrange(4)
                    model[row] = (weight, 1)
                    rank[row] = tree.insert_row(row, weight, 1)
            else:
                row = rng.choice(list(model))
                weight = rng.randrange(4)
                multiplicity = rng.randrange(2)
                model[row] = (weight, multiplicity)
                tree.set_weight(rank[row], weight)
                rank[row].multiplicity = multiplicity
            if step % 50 == 49:
                entries = [(row, w, m) for row, (w, m) in model.items()]
                _check_against_reference(tree, rank, entries)

    def test_compacted_drops_only_tombstones(self):
        entries = _reference([((i,), 1 if i % 2 else 0, i % 2) for i in range(10)])
        tree, nodes = OrderedWeightTree.from_sorted(entries)
        compacted, new_nodes = tree.compacted()
        assert [n.row for n in compacted] == [(i,) for i in range(10) if i % 2]
        assert compacted.total == tree.total
        rank = {n.row: n for n in new_nodes}
        _check_against_reference(
            compacted, rank, [e for e in entries if e[2] > 0]
        )

    def test_sorted_insertion_order_stays_balanced(self):
        """Ascending inserts (the adversarial case for a plain BST) must
        stay logarithmic — the treap's whole reason to exist."""
        tree, __ = OrderedWeightTree.from_sorted([])
        for i in range(2000):
            tree.insert_row((i,), 1, 1)

        def depth(node):
            if node is None:
                return 0
            return 1 + max(depth(node.left), depth(node.right))

        assert depth(tree.root) < 60  # ~3.5x the expected 2·log2(n)
