"""Unit tests for CQIndex — Theorem 4.3's counting / access / inverted
access contract, including the paper's Example 4.4 numbers."""

import random

import pytest

from repro import CQIndex, Database, NotFreeConnexError, OutOfBoundError, Relation, parse_cq
from repro.database.joins import evaluate_cq


@pytest.fixture()
def example44_index(example44_db):
    # The paper's Example 4.4 join tree: R1 as root, children R2 and R3.
    # (The printed query in the paper reads R2(v,y), R3(w,z), but its data
    # tables and weights join R2 on w and R3 on x; we encode the latter.)
    q = parse_cq("Q(v, w, x, y, z) :- R1(v, w, x), R2(w, y), R3(x, z)")
    return CQIndex(q, example44_db, root_atom=0)


class TestExample44:
    def test_count_is_16(self, example44_index):
        assert example44_index.count == 16

    def test_access_13(self, example44_index):
        assert example44_index.access(13) == ("a2", "b2", "c1", "d3", "e3")

    def test_inverted_access_13(self, example44_index):
        assert example44_index.inverted_access(("a2", "b2", "c1", "d3", "e3")) == 13

    def test_weights_and_start_indexes_match_the_paper(self, example44_db):
        q = parse_cq("Q(v, w, x, y, z) :- R1(v, w, x), R2(w, y), R3(x, z)")
        index = CQIndex(q, example44_db, root_atom=0)
        root = index._forest.roots[0]
        bucket = root.buckets[()]
        assert bucket.weights == [6, 2, 6, 2]
        assert bucket.start == [0, 6, 8, 14]

    def test_full_bijection(self, example44_index):
        for position in range(16):
            answer = example44_index.access(position)
            assert example44_index.inverted_access(answer) == position

    def test_non_answers_report_not_a_member(self, example44_index):
        assert example44_index.inverted_access(("a1", "b1", "c1", "d3", "e1")) is None
        assert example44_index.inverted_access(("zz", "b1", "c1", "d1", "e1")) is None
        assert example44_index.inverted_access(("a1",)) is None


class TestContract:
    def test_out_of_bounds(self, chain_db):
        index = CQIndex(parse_cq("Q(a, b, c) :- R(a, b), S(b, c)"), chain_db)
        with pytest.raises(OutOfBoundError):
            index.access(index.count)
        with pytest.raises(OutOfBoundError):
            index.access(-1)

    def test_matches_ground_truth(self, chain_db):
        q = parse_cq("Q(a, b, c) :- R(a, b), S(b, c)")
        index = CQIndex(q, chain_db)
        truth = evaluate_cq(q, chain_db)
        assert index.count == len(truth)
        assert {index.access(i) for i in range(index.count)} == truth

    def test_enumeration_matches_access_order(self, chain_db):
        q = parse_cq("Q(a, b, c) :- R(a, b), S(b, c)")
        index = CQIndex(q, chain_db)
        assert list(index) == [index.access(i) for i in range(index.count)]

    def test_unreduced_index_equivalent_for_full_query(self, chain_db):
        q = parse_cq("Q(a, b, c) :- R(a, b), S(b, c)")
        reduced = CQIndex(q, chain_db, reduce=True)
        unreduced = CQIndex(q, chain_db, reduce=False)
        assert reduced.count == unreduced.count
        assert list(reduced) == list(unreduced)
        # Dangling tuples in the unreduced index are not members.
        assert unreduced.inverted_access((4, 99, "w")) is None

    def test_rejects_non_free_connex(self, chain_db):
        with pytest.raises(NotFreeConnexError):
            CQIndex(parse_cq("Q(a, c) :- R(a, b), S(b, c)"), chain_db)

    def test_contains(self, chain_db):
        index = CQIndex(parse_cq("Q(a, b, c) :- R(a, b), S(b, c)"), chain_db)
        assert (1, 10, "x") in index
        assert (4, 99, "w") not in index

    def test_empty_answer_set(self):
        db = Database([
            Relation("R", ("a", "b"), [(1, 5)]),
            Relation("S", ("b", "c"), [(9, 9)]),
        ])
        index = CQIndex(parse_cq("Q(a, b, c) :- R(a, b), S(b, c)"), db)
        assert index.count == 0
        assert list(index) == []
        with pytest.raises(OutOfBoundError):
            index.access(0)

    def test_boolean_query_true_and_false(self):
        db = Database([Relation("R", ("a",), [(1,)]), Relation("S", ("a",), [(1,)])])
        true_index = CQIndex(parse_cq("Q() :- R(x), S(x)"), db)
        assert true_index.count == 1
        assert true_index.access(0) == ()
        assert true_index.inverted_access(()) == 0

        db_false = Database([Relation("R", ("a",), [(1,)]), Relation("S", ("a",), [(2,)])])
        false_index = CQIndex(parse_cq("Q() :- R(x), S(x)"), db_false)
        assert false_index.count == 0

    def test_cartesian_product_forest(self):
        db = Database([
            Relation("R", ("a",), [(1,), (2,), (3,)]),
            Relation("S", ("b",), [(7,), (8,)]),
        ])
        q = parse_cq("Q(a, b) :- R(a), S(b)")
        index = CQIndex(q, db)
        assert index.count == 6
        answers = {index.access(i) for i in range(6)}
        assert answers == evaluate_cq(q, db)
        for i in range(6):
            assert index.inverted_access(index.access(i)) == i

    def test_projection_with_existentials(self, chain_db):
        q = parse_cq("Q(a) :- R(a, b), S(b, c)")
        index = CQIndex(q, chain_db)
        assert {index.access(i) for i in range(index.count)} == evaluate_cq(q, chain_db)

    def test_constants_in_atoms(self, chain_db):
        q = parse_cq("Q(a) :- R(a, 10)")
        index = CQIndex(q, chain_db)
        assert {index.access(i) for i in range(index.count)} == {(1,)}

    def test_self_join_supported(self):
        db = Database([Relation("E", ("u", "v"), [(1, 2), (2, 3), (3, 4)])])
        q = parse_cq("Q(a, b, c) :- E(a, b), E(b, c)")
        index = CQIndex(q, db)
        assert {index.access(i) for i in range(index.count)} == {(1, 2, 3), (2, 3, 4)}

    def test_random_order_is_complete(self, chain_db):
        q = parse_cq("Q(a, b, c) :- R(a, b), S(b, c)")
        index = CQIndex(q, chain_db)
        out = list(index.random_order(random.Random(5)))
        assert sorted(out) == sorted(index)

    def test_single_atom_query(self):
        db = Database([Relation("R", ("a", "b"), [(2, 1), (1, 2)])])
        index = CQIndex(parse_cq("Q(a, b) :- R(a, b)"), db)
        assert index.count == 2
        # Canonical bucket sorting puts (1,2) first regardless of load order.
        assert index.access(0) == (1, 2)

    def test_head_order_respected(self):
        db = Database([Relation("R", ("a", "b"), [(1, 2)])])
        index = CQIndex(parse_cq("Q(b, a) :- R(a, b)"), db)
        assert index.access(0) == (2, 1)
