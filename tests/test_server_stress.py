"""Threaded stress: HTTP readers paging while JSONL ingest streams.

The generation-swap scheme of ``test_concurrency_stress``, over the wire:
every ingest batch replaces the *whole* current generation of ``R`` rows
with the next one (one ``Delta``, one version bump), so any answer page
that mixes generations — or whose reported ``version`` disagrees with the
generation its answers carry — proves a read that straddled a write.

Readers hammer one app through the thread-safe in-process
:class:`~repro.server.testing.TestClient` from many threads, exactly the
concurrency shape of the stdlib thread-per-connection bridge.
"""

import json
import sys
import threading

from repro import Database, Relation
from repro.server import create_app
from repro.server.testing import TestClient

#: Generation ``g`` owns the key range [g*STRIDE, g*STRIDE + ROWS).
STRIDE = 10_000
ROWS = 120
GENERATIONS = 25
QUERY = "Q(a, b) :- R(a, b)"


def gen_rows(generation: int):
    return [(generation * STRIDE + i, i) for i in range(ROWS)]


def swap_body(old: int, new: int) -> bytes:
    ops = [
        {"op": "delete", "relation": "R", "row": list(row)}
        for row in gen_rows(old)
    ] + [
        {"op": "insert", "relation": "R", "row": list(row)}
        for row in gen_rows(new)
    ]
    return "".join(json.dumps(op) + "\n" for op in ops).encode("utf-8")


def generation_of(page_answers) -> set:
    return {a // STRIDE for a, _ in page_answers}


def test_http_readers_see_one_generation_per_page():
    switch = sys.getswitchinterval()
    sys.setswitchinterval(0.001)  # force frequent preemption
    try:
        _run_storm()
    finally:
        sys.setswitchinterval(switch)


def _run_storm():
    database = Database([Relation("R", ("a", "b"), gen_rows(0))])
    app = create_app(database, dynamic=True, session_ttl=None)
    client = TestClient(app)
    base_version = client.get("/healthz").json()["version"]

    # Each swap is one batch, one version bump: the generation wholly
    # visible at version v is exactly v - base_version. That determinism
    # is what lets readers check version <-> content with no side channel.
    stop = threading.Event()
    failures = []

    def writer():
        try:
            for generation in range(GENERATIONS):
                response = client.post(
                    "/ingest", body=swap_body(generation, generation + 1)
                )
                assert response.status == 200, response.text
                payload = response.json()
                assert payload["inserted"] == ROWS
                assert payload["deleted"] == ROWS
                assert payload["version"] == base_version + generation + 1
        except Exception as error:  # pragma: no cover - failure path
            failures.append(f"writer: {error!r}")
        finally:
            stop.set()

    def reader(on_stale: str, strict: bool):
        try:
            pages = 0
            session = client.post(
                "/cursors", json={"query": QUERY, "on_stale": on_stale}
            ).json()
            while not (stop.is_set() and pages > 0):
                sid = session["cursor"]
                response = client.get(
                    f"/cursors/{sid}/page?number={pages % 3}&size=40"
                )
                if response.status == 409:
                    # refresh itself may lose the race to yet another
                    # write (another 409) — just try again.
                    refreshed = client.post(f"/cursors/{sid}/refresh")
                    assert refreshed.status in (200, 409), refreshed.text
                    continue
                assert response.status == 200, response.text
                payload = response.json()
                generations = generation_of(payload["answers"])
                # The consistency contract: one pinned view per read.
                assert len(generations) == 1, (
                    f"page mixed generations {generations}"
                )
                if strict:
                    # raise-policy sessions bind version <-> content
                    # exactly (reresolve has a documented freshness race
                    # on the *reported* version, so only content
                    # single-generation is asserted there).
                    expected = payload["version"] - base_version
                    assert generations == {expected}, (
                        f"version {payload['version']} served generation "
                        f"{generations}, expected {{{expected}}}"
                    )
                pages += 1
            assert pages > 0
        except Exception as error:  # pragma: no cover - failure path
            failures.append(f"reader({on_stale}): {error!r}")

    readers = [
        threading.Thread(target=reader, args=("raise", True)),
        threading.Thread(target=reader, args=("raise", True)),
        threading.Thread(target=reader, args=("reresolve", False)),
        threading.Thread(target=reader, args=("reresolve", False)),
    ]
    writer_thread = threading.Thread(target=writer)
    for thread in readers:
        thread.start()
    writer_thread.start()
    writer_thread.join(timeout=120)
    for thread in readers:
        thread.join(timeout=120)
    assert not failures, failures
    assert not writer_thread.is_alive()

    # The storm settled on the final generation, fully swapped.
    final = client.post("/cursors", json={"query": QUERY}).json()
    assert final["count"] == ROWS
    sid = final["cursor"]
    last_page = client.get(f"/cursors/{sid}/batch?start=0&stop={ROWS}").json()
    assert generation_of(last_page["answers"]) == {GENERATIONS}
