"""Unit tests for the free-connex classification (the paper's Section 4
frontier)."""

from repro.query import free_connex_report, is_free_connex, parse_cq
from repro.tpch.queries import CQ_QUERIES, UCQ_QUERIES


class TestKnownClassifications:
    def test_full_acyclic_is_free_connex(self):
        assert is_free_connex(parse_cq("Q(x, y, z) :- R(x, y), S(y, z)"))

    def test_matrix_multiplication_query_is_not(self):
        # The canonical acyclic non-free-connex CQ: Enum⟨lin,polylog⟩ for it
        # would give sparse Boolean matrix multiplication (Theorem 4.1).
        report = free_connex_report(parse_cq("Q(x, z) :- R(x, y), S(y, z)"))
        assert report.acyclic
        assert not report.free_connex
        assert report.classification() == "acyclic but not free-connex"

    def test_projection_to_one_end_is_free_connex(self):
        assert is_free_connex(parse_cq("Q(x) :- R(x, y), S(y, z)"))
        assert is_free_connex(parse_cq("Q(x, y) :- R(x, y), S(y, z)"))

    def test_triangle_is_cyclic(self):
        report = free_connex_report(parse_cq("Q(x, y, z) :- R(x, y), S(y, z), T(x, z)"))
        assert not report.acyclic
        assert report.classification() == "cyclic"

    def test_boolean_query_is_free_connex(self):
        # With no free variables the head edge is empty and changes nothing.
        assert is_free_connex(parse_cq("Q() :- R(x, y), S(y, z)"))

    def test_example_5_1_members_are_free_connex(self):
        q1 = parse_cq("Q(x, y, z) :- R(x, y), S(y, z)")
        q2 = parse_cq("Q(x, y, z) :- S(y, z), T(x, z)")
        assert is_free_connex(q1)
        assert is_free_connex(q2)

    def test_example_5_1_intersection_is_not(self):
        # Q1 ∩ Q2 is the triangle query — the heart of Example 5.1's lower
        # bound for UCQ random access.
        intersection = parse_cq("Q(x, y, z) :- R(x, y), S(y, z), T(x, z)")
        assert not is_free_connex(intersection)

    def test_self_join_flag(self):
        report = free_connex_report(parse_cq("Q(x, y, z) :- R(x, y), R(y, z)"))
        assert not report.self_join_free


class TestPaperQueries:
    def test_all_six_benchmark_cqs_are_free_connex(self):
        for name, make in CQ_QUERIES.items():
            assert is_free_connex(make()), name

    def test_all_ucq_members_are_free_connex(self):
        for name, make in UCQ_QUERIES.items():
            ucq = make()
            assert ucq.is_union_of_free_connex(), name

    def test_ucq_intersections_are_free_connex(self):
        # The benchmark UCQs are mc-UCQ candidates: every intersection CQ
        # (conjoined bodies) is itself free-connex.
        for name, make in UCQ_QUERIES.items():
            assert make().is_mutually_compatible_candidate(), name
