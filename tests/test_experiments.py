"""Tests for the experiment harness, statistics, and report rendering."""

import random

import pytest

from repro.experiments.harness import (
    run_cumulative_renum_cq,
    run_mcucq,
    run_mutation_requery,
    run_renum_cq,
    run_sampler,
    run_union_renum,
)
from repro.experiments.report import format_seconds, render_bar_chart, render_table
from repro.experiments.stats import box_stats, delay_summary
from repro.sampling import ExactWeightSampler, NaiveRejectionSampler
from repro.tpch.queries import make_q0, make_qa_qe


class TestStats:
    def test_box_stats_simple(self):
        stats = box_stats([1.0, 2.0, 3.0, 4.0, 5.0])
        assert stats.median == 3.0
        assert stats.q1 == 2.0 and stats.q3 == 4.0
        assert stats.outliers == 0
        assert stats.whisker_low == 1.0 and stats.whisker_high == 5.0

    def test_box_stats_outliers(self):
        values = [1.0] * 20 + [100.0]
        stats = box_stats(values)
        assert stats.outliers == 1
        assert stats.whisker_high == 1.0
        assert 0 < stats.outlier_percent < 5

    def test_box_stats_single_value(self):
        stats = box_stats([2.5])
        assert stats.median == stats.q1 == stats.q3 == 2.5

    def test_box_stats_empty_rejected(self):
        with pytest.raises(ValueError):
            box_stats([])

    def test_delay_summary(self):
        summary = delay_summary([1.0, 1.0, 1.0, 1.0])
        assert summary.mean == 1.0
        assert summary.std == 0.0
        assert summary.outlier_percent == 0.0


class TestReport:
    def test_format_seconds(self):
        assert format_seconds(2.0) == "2.00s"
        assert format_seconds(0.002) == "2.00ms"
        assert format_seconds(2e-6) == "2µs"

    def test_render_table_alignment(self):
        text = render_table(["col", "value"], [["a", 1], ["bbbb", 22]])
        lines = text.splitlines()
        assert len(lines) == 4
        assert lines[0].startswith("col")
        assert set(lines[1]) <= {"-", " "}

    def test_render_bar_chart(self):
        text = render_bar_chart(["g1"], [[1.0], [0.5]], ["fast", "slow"])
        assert "g1" in text and "fast" in text and "█" in text


class TestHarness:
    def test_run_renum_cq(self, tiny_tpch):
        run = run_renum_cq(make_q0(), tiny_tpch, fraction=0.5, rng=random.Random(0),
                           record_delays=True)
        assert run.completed
        assert run.answers == run.requested
        assert len(run.delays) == run.answers
        assert run.preprocessing_seconds > 0
        assert run.total_seconds >= run.enumeration_seconds

    def test_run_sampler_completes(self, tiny_tpch):
        run = run_sampler(make_q0(), tiny_tpch, ExactWeightSampler, fraction=0.3,
                          rng=random.Random(0))
        assert run.completed
        assert run.extra["draws"] >= run.answers

    def test_run_sampler_budget_halts(self, tiny_tpch):
        run = run_sampler(
            make_q0(), tiny_tpch, NaiveRejectionSampler, fraction=0.9,
            rng=random.Random(0), max_draw_factor=0.1,
            answer_count=len(tiny_tpch.relation("partsupp")),
        )
        assert not run.completed

    def test_run_union_renum_with_snapshots(self, tiny_tpch):
        run = run_union_renum(
            make_qa_qe(), tiny_tpch, rng=random.Random(0), decile_snapshots=True
        )
        assert run.completed
        snapshots = run.extra["snapshots"]
        assert snapshots
        assert snapshots[-1]["emitted"] == run.answers
        emitted = [s["emitted"] for s in snapshots]
        assert emitted == sorted(emitted)

    def test_run_mcucq(self, tiny_tpch):
        run = run_mcucq(make_qa_qe(), tiny_tpch, fraction=0.2, rng=random.Random(0))
        assert run.completed

    def test_run_cumulative(self, tiny_tpch):
        run = run_cumulative_renum_cq(make_qa_qe(), tiny_tpch, rng=random.Random(0))
        assert run.answers == run.requested

    def test_run_mutation_requery_dynamic_vs_rebuild(self):
        from repro import Database, QueryService, Relation, parse_cq

        def db():
            return Database([
                Relation("R", ("a", "b"), [(i, i % 3) for i in range(30)]),
                Relation("S", ("b", "c"), [(i % 3, i) for i in range(12)]),
            ])

        query = parse_cq("Q(a, b, c) :- R(a, b), S(b, c)")
        updates = [("insert", "R", (100 + i, i % 3)) for i in range(6)] + \
                  [("delete", "R", (100 + i, i % 3)) for i in range(6)]
        hot_db = db()
        hot = run_mutation_requery(
            query, hot_db, updates, service=QueryService(hot_db, dynamic=True))
        cold_db = db()
        cold = run_mutation_requery(
            query, cold_db, updates, service=QueryService(cold_db, dynamic=False))
        assert hot.requested == cold.requested == len(updates)
        assert hot.answers == cold.answers  # same page sizes served
        assert hot.extra["updates_in_place"] == len(updates)
        assert hot.extra["invalidations"] == 0
        assert cold.extra["updates_in_place"] == 0
        assert cold.extra["invalidations"] == len(updates)

    def test_run_mutation_requery_rejects_foreign_service(self):
        from repro import Database, QueryService, Relation, parse_cq

        database = Database([Relation("R", ("a", "b"), [(1, 2)])])
        other = Database([Relation("R", ("a", "b"), [(1, 2)])])
        with pytest.raises(ValueError):
            run_mutation_requery(
                parse_cq("Q(a, b) :- R(a, b)"), database, [],
                service=QueryService(other))

    def test_run_mutation_requery_rejects_unknown_operation(self):
        from repro import Database, Relation, parse_cq

        database = Database([Relation("R", ("a", "b"), [(1, 2)])])
        with pytest.raises(ValueError):
            run_mutation_requery(
                parse_cq("Q(a, b) :- R(a, b)"), database,
                [("upsert", "R", (3, 4))])


class TestFigureDrivers:
    """Smoke tests at minuscule scale: drivers render non-empty reports."""

    @pytest.fixture()
    def config(self):
        from repro.experiments.figures import ExperimentConfig

        return ExperimentConfig(scale_factor=0.0005, percentages=(10, 50), seed=1,
                                cq_names=("Q0",))

    def test_figure1(self, config):
        from repro.experiments.figures import figure1

        text = figure1(config).render()
        assert "Q0" in text and "REnum pre" in text

    def test_figure2(self, config):
        from repro.experiments.figures import figure2_3

        text = figure2_3(1.0, config).render()
        assert "median" in text

    def test_figure4a(self, config):
        from repro.experiments.figures import figure4a

        text = figure4a(config).render()
        assert "REnum(mcUCQ)" in text

    def test_figure4b(self, config):
        from repro.experiments.figures import figure4b

        text = figure4b(config).render()
        assert "REnum(mcUCQ)" in text and "100%" in text

    def test_figure5(self, config):
        from repro.experiments.figures import figure5

        text = figure5(config).render()
        assert "rejection time" in text

    def test_figure6(self, config):
        from repro.experiments.figures import figure6

        text = figure6(config).render()
        assert "EO pre" in text

    def test_figure7_tables(self, config):
        from repro.experiments.figures import figure7_tables

        text = figure7_tables(config).render()
        assert "mean (µ)" in text and "full enumeration" in text

    def test_figure8(self, config):
        from repro.experiments.figures import figure8

        text = figure8(config).render()
        assert "OE pre" in text and "Q3" in text

    def test_rs_note(self, config):
        from repro.experiments.figures import rs_note

        text = rs_note(config).render()
        assert "Q3" in text
