"""Unit tests for ConjunctiveQuery and conjunction."""

import pytest

from repro.query import ConjunctiveQuery, QueryConstructionError, parse_cq
from repro.query.atoms import Atom, Variable
from repro.query.cq import conjoin


def test_variable_classification():
    q = parse_cq("Q(x) :- R(x, y), S(y, z)")
    assert q.free_variables == frozenset({Variable("x")})
    assert q.existential_variables == frozenset({Variable("y"), Variable("z")})
    assert q.all_variables == frozenset({Variable("x"), Variable("y"), Variable("z")})


def test_is_full():
    assert parse_cq("Q(x, y) :- R(x, y)").is_full()
    assert not parse_cq("Q(x) :- R(x, y)").is_full()


def test_self_joins():
    q = parse_cq("Q(x, y, z) :- R(x, y), R(y, z), S(z, x)")
    assert not q.is_self_join_free()
    assert q.self_joins() == [(0, 1)]
    assert parse_cq("Q(x, y) :- R(x, y), S(y, x)").is_self_join_free()


def test_relation_symbols_in_order():
    q = parse_cq("Q(x, y, z) :- S(x, y), R(y, z), S(z, x)")
    assert q.relation_symbols() == ("S", "R")


def test_safety_enforced():
    with pytest.raises(QueryConstructionError):
        ConjunctiveQuery([Variable("w")], [Atom("R", [Variable("x")])])


def test_duplicate_head_rejected():
    with pytest.raises(QueryConstructionError):
        ConjunctiveQuery(
            [Variable("x"), Variable("x")], [Atom("R", [Variable("x")])]
        )


def test_empty_body_rejected():
    with pytest.raises(QueryConstructionError):
        ConjunctiveQuery([Variable("x")], [])


def test_rename_existentials():
    q = parse_cq("Q(x) :- R(x, y), S(y, z)")
    renamed = q.rename_existentials("#0")
    assert renamed.head == q.head
    assert renamed.existential_variables == frozenset({Variable("y#0"), Variable("z#0")})


def test_project():
    q = parse_cq("Q(x, y) :- R(x, y)")
    p = q.project([Variable("x")])
    assert p.head == (Variable("x"),)
    assert p.body == q.body


class TestConjoin:
    def test_intersection_body(self):
        q1 = parse_cq("Q(x) :- R(x, y)")
        q2 = parse_cq("Q(x) :- S(x, y)")
        joint = conjoin([q1, q2])
        assert joint.head == q1.head
        assert len(joint.body) == 2
        # Existentials renamed apart: the two y's must differ.
        ys = {t for atom in joint.body for t in atom.variable_set()} - set(joint.head)
        assert len(ys) == 2

    def test_dedupes_identical_atoms(self):
        q1 = parse_cq("Q(x, y) :- R(x, y), T(x, y)")
        q2 = parse_cq("Q(x, y) :- R(x, y), U(x, y)")
        joint = conjoin([q1, q2])
        assert [a.relation for a in joint.body] == ["R", "T", "U"]

    def test_head_mismatch_rejected(self):
        with pytest.raises(QueryConstructionError):
            conjoin([parse_cq("Q(x) :- R(x)"), parse_cq("Q(y) :- R(y)")])

    def test_empty_rejected(self):
        with pytest.raises(QueryConstructionError):
            conjoin([])
