"""Example 5.1 — the union whose random access is Triangle-hard.

``Q1(x,y,z) :- R(x,y), S(y,z)`` and ``Q2(x,y,z) :- S(y,z), T(x,z)`` are
both free-connex, yet counting their union decides triangle existence:
``|Q∪(D)| < |Q1(D)| + |Q2(D)|`` iff ``Q1(D) ∩ Q2(D) ≠ ∅`` iff the graph
encoded by R, S, T has a triangle. The tests reproduce the reduction and
confirm that the library surfaces the boundary honestly: the intersection
CQ is the (non-free-connex) triangle query, so inclusion–exclusion counting
refuses, while the Theorem 5.4 enumerator still works.
"""

import random

import pytest

from repro import (
    CQIndex,
    Database,
    IncompatibleUnionError,
    MCUCQIndex,
    NotFreeConnexError,
    Relation,
    UnionRandomEnumerator,
    is_free_connex,
    parse_ucq,
)
from repro.core.counting import ucq_count, ucq_count_naive
from repro.database.joins import evaluate_ucq


def _encode_graph(edges):
    """Encode an undirected graph into R, S, T as in the reduction: the
    triangle query Q∩(x,y,z) :- R(x,y), S(y,z), T(x,z) finds its triangles."""
    directed = set()
    for u, v in edges:
        directed.add((u, v))
        directed.add((v, u))
    rows = sorted(directed)
    return Database([
        Relation("R", ("x", "y"), rows),
        Relation("S", ("y", "z"), rows),
        Relation("T", ("x", "z"), rows),
    ])


UNION = "Q(x, y, z) :- R(x, y), S(y, z) ; Q(x, y, z) :- S(y, z), T(x, z)"

TRIANGLE_GRAPH = [(1, 2), (2, 3), (1, 3), (3, 4)]
TRIANGLE_FREE_GRAPH = [(1, 2), (2, 3), (3, 4), (4, 1)]  # a 4-cycle


class TestReduction:
    def test_members_are_free_connex(self):
        ucq = parse_ucq(UNION)
        assert all(is_free_connex(q) for q in ucq.queries)

    def test_member_counts_are_linear_time_available(self):
        db = _encode_graph(TRIANGLE_GRAPH)
        ucq = parse_ucq(UNION)
        c1 = CQIndex(ucq.queries[0], db).count
        c2 = CQIndex(ucq.queries[1], db).count
        assert c1 > 0 and c2 > 0

    @pytest.mark.parametrize(
        "graph,has_triangle",
        [(TRIANGLE_GRAPH, True), (TRIANGLE_FREE_GRAPH, False)],
    )
    def test_union_count_detects_triangles(self, graph, has_triangle):
        db = _encode_graph(graph)
        ucq = parse_ucq(UNION)
        c1 = CQIndex(ucq.queries[0], db).count
        c2 = CQIndex(ucq.queries[1], db).count
        union_count = ucq_count_naive(ucq, db)
        assert (union_count < c1 + c2) == has_triangle

    def test_intersection_counting_refuses(self):
        # The inclusion–exclusion counter needs |Q1 ∩ Q2| — the triangle
        # query — and must refuse rather than silently degrade.
        db = _encode_graph(TRIANGLE_GRAPH)
        ucq = parse_ucq(UNION)
        with pytest.raises(NotFreeConnexError):
            ucq_count(ucq, db)

    def test_mcucq_index_refuses(self):
        db = _encode_graph(TRIANGLE_GRAPH)
        ucq = parse_ucq(UNION)
        with pytest.raises((IncompatibleUnionError, NotFreeConnexError)):
            MCUCQIndex(ucq, db)

    def test_theorem_5_4_enumeration_still_works(self):
        # Random-order enumeration does NOT require random access: Algorithm
        # 5 handles this union (expected logarithmic delay).
        db = _encode_graph(TRIANGLE_GRAPH)
        ucq = parse_ucq(UNION)
        truth = evaluate_ucq(ucq, db)
        enum = UnionRandomEnumerator.for_indexes(
            [CQIndex(q, db) for q in ucq.queries], rng=random.Random(17)
        )
        out = list(enum)
        assert set(out) == truth and len(out) == len(truth)
