"""Unit tests for the datalog-style parser."""

import pytest

from repro.query import ParseError, parse_atom, parse_cq, parse_ucq
from repro.query.atoms import Atom, Constant, Variable


class TestParseAtom:
    def test_variables(self):
        assert parse_atom("R(x, y)") == Atom("R", [Variable("x"), Variable("y")])

    def test_constants(self):
        atom = parse_atom("R(x, 5, -2, 3.5, 'abc')")
        assert atom.terms == (
            Variable("x"),
            Constant(5),
            Constant(-2),
            Constant(3.5),
            Constant("abc"),
        )

    def test_nullary(self):
        assert parse_atom("R()").arity == 0

    def test_trailing_garbage(self):
        with pytest.raises(ParseError):
            parse_atom("R(x) extra")

    def test_unbalanced(self):
        with pytest.raises(ParseError):
            parse_atom("R(x")


class TestParseCQ:
    def test_simple(self):
        q = parse_cq("Q(x, y) :- R(x, z), S(z, y)")
        assert q.name == "Q"
        assert [v.name for v in q.head] == ["x", "y"]
        assert len(q.body) == 2
        assert q.existential_variables == frozenset({Variable("z")})

    def test_roundtrip_str(self):
        text = "Q(x, y) :- R(x, z), S(z, y)"
        assert str(parse_cq(text)) == text

    def test_constants_in_body(self):
        q = parse_cq("Q(x) :- R(x, 7)")
        assert q.body[0].terms[1] == Constant(7)

    def test_unsafe_head_rejected(self):
        with pytest.raises(Exception):
            parse_cq("Q(x, w) :- R(x, y)")

    def test_constant_in_head_rejected(self):
        with pytest.raises(ParseError):
            parse_cq("Q(3) :- R(x)")

    def test_missing_body(self):
        with pytest.raises(ParseError):
            parse_cq("Q(x) :- ")

    def test_unexpected_character(self):
        with pytest.raises(ParseError):
            parse_cq("Q(x) :- R(x) @ S(x)")


class TestParseUCQ:
    def test_two_members(self):
        u = parse_ucq("Q(x) :- R(x, y) ; Q(x) :- S(x, y)")
        assert len(u.queries) == 2
        assert u.queries[0].body[0].relation == "R"
        assert u.queries[1].body[0].relation == "S"

    def test_single_member(self):
        assert len(parse_ucq("Q(x) :- R(x)").queries) == 1

    def test_mismatched_heads_rejected(self):
        with pytest.raises(Exception):
            parse_ucq("Q(x) :- R(x) ; Q(y) :- S(y)")
