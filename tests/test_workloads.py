"""Tests for the synthetic workload generators."""

import random

import pytest

from repro import CQIndex, evaluate_cq, is_free_connex
from repro.query.free_connex import free_connex_report
from repro.workloads import (
    chain_query,
    graph_database,
    random_acyclic_query,
    random_database,
    random_graph_edges,
    star_query,
)


class TestQueryFamilies:
    def test_chain_full(self):
        q = chain_query(3)
        assert len(q.body) == 3
        assert q.is_full()
        assert is_free_connex(q)

    def test_chain_prefix_projection_is_free_connex(self):
        q = chain_query(4, free_prefix=2)
        assert not q.is_full()
        assert is_free_connex(q)

    def test_chain_endpoints_projection_is_not_free_connex(self):
        # Q(x0, xk) over a chain is the classic hard case for k ≥ 2.
        from repro.query.cq import ConjunctiveQuery

        base = chain_query(2)
        hard = ConjunctiveQuery([base.head[0], base.head[-1]], base.body)
        report = free_connex_report(hard)
        assert report.acyclic and not report.free_connex

    def test_star(self):
        q = star_query(4)
        assert len(q.body) == 4
        assert is_free_connex(q)

    def test_invalid_sizes(self):
        with pytest.raises(ValueError):
            chain_query(0)
        with pytest.raises(ValueError):
            star_query(0)


class TestRandomQueries:
    @pytest.mark.parametrize("seed", range(8))
    def test_always_acyclic_and_free_connex(self, seed):
        rng = random.Random(seed)
        q = random_acyclic_query(atoms=rng.randint(1, 6), rng=rng,
                                 full=bool(seed % 2))
        report = free_connex_report(q)
        assert report.acyclic
        assert report.free_connex

    @pytest.mark.parametrize("seed", range(5))
    def test_indexable_end_to_end(self, seed):
        rng = random.Random(100 + seed)
        q = random_acyclic_query(atoms=4, rng=rng, full=(seed % 2 == 0))
        db = random_database(q, rng, rows_per_relation=20, domain=4)
        index = CQIndex(q, db)
        truth = evaluate_cq(q, db)
        assert index.count == len(truth)
        assert {index.access(i) for i in range(index.count)} == truth


class TestRandomData:
    def test_skew_shifts_mass(self):
        rng = random.Random(0)
        q = chain_query(1)
        uniform = random_database(q, random.Random(0), rows_per_relation=500,
                                  domain=6, skew=1.0)
        skewed = random_database(q, random.Random(0), rows_per_relation=500,
                                 domain=6, skew=3.0)

        def zero_fraction(db):
            rows = db.relation("R1").rows
            return sum(1 for r in rows if r[0] == 0) / len(rows)

        assert zero_fraction(skewed) > zero_fraction(uniform) + 0.2

    def test_one_relation_per_symbol_even_with_self_joins(self):
        from repro.query.parser import parse_cq

        q = parse_cq("Q(a, b, c) :- E(a, b), E(b, c)")
        db = random_database(q, random.Random(1))
        assert db.names() == ["E"]


class TestGraphs:
    def test_random_graph_probability_extremes(self):
        rng = random.Random(0)
        assert random_graph_edges(6, 0.0, rng) == []
        assert len(random_graph_edges(6, 1.0, rng)) == 15

    def test_graph_database_symmetric(self):
        db = graph_database([(1, 2)])
        assert set(db.relation("R").rows) == {(1, 2), (2, 1)}
        assert db.relation("R").rows == db.relation("S").rows

    def test_triangle_detection_via_union_count(self):
        """Example 5.1's reduction over random graphs: the union-count
        criterion must agree with direct triangle detection."""
        from repro.core.counting import ucq_count_naive
        from repro.query.parser import parse_cq, parse_ucq
        from repro import evaluate_cq

        union = parse_ucq(
            "Q(x, y, z) :- R(x, y), S(y, z) ; Q(x, y, z) :- S(y, z), T(x, z)"
        )
        triangle = parse_cq("Qt(x, y, z) :- R(x, y), S(y, z), T(x, z)")
        for seed in range(6):
            rng = random.Random(seed)
            edges = random_graph_edges(7, 0.3, rng)
            if not edges:
                continue
            db = graph_database(edges)
            c1 = len(evaluate_cq(union.queries[0], db))
            c2 = len(evaluate_cq(union.queries[1], db))
            union_count = ucq_count_naive(union, db)
            has_triangle = bool(evaluate_cq(triangle, db))
            assert (union_count < c1 + c2) == has_triangle, f"seed={seed}"
