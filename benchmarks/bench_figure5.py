"""Figure 5 — time spent on answers vs rejections across a full
REnum(UCQ) run on QS7 ∪ QC7."""

from repro.experiments.figures import figure5


def test_figure5(benchmark, config, results_dir):
    result = benchmark.pedantic(figure5, args=(config,), rounds=1, iterations=1)
    text = result.render()
    (results_dir / "figure5.txt").write_text(text)
    print(text)
