"""Acceptance gate: dynamic mc-UCQ serving vs. invalidate-and-rebuild.

The serving question behind the dynamic union path: a hot mc-UCQ is
cached, the database takes single-tuple writes, and every write is
followed by a re-query (count + first page — a live federated search page
under churn). Two services process the identical update stream:

* ``dynamic=True`` — the cached
  :class:`~repro.core.union_access.MCUCQIndex` (dynamic mode) absorbs each
  write in place: every member index takes an O(depth · log) delta, and
  presence transitions patch exactly the affected intersection forests;
* ``dynamic=False`` — each write invalidates the cached static union, so
  the next re-query pays a full O(|D|) rebuild of the whole 2^m index
  family (members *and* intersections).

The gate asserts the dynamic path is ≥ 5× faster at ~10⁵ facts (the
ISSUE 3 acceptance bar), verifies count agreement after every update and
position-for-position answer agreement at the end (order-maintained
buckets keep the canonical enumeration order under churn), and writes the
measured numbers to ``BENCH_union_dynamic.json``.

Usage
-----
``PYTHONPATH=src python benchmarks/bench_union_dynamic.py``          (full, asserts 5×)
``PYTHONPATH=src python benchmarks/bench_union_dynamic.py --smoke``  (small, CI-fast,
asserts equivalence and a modest ≥ 2× bar)

Not a pytest file on purpose: like ``bench_batch.py`` and
``bench_dynamic.py``, this is an acceptance gate that CI runs directly.
"""

from __future__ import annotations

import argparse
import gc
import random
import sys
import time

from repro import Database, QueryService, Relation, parse_ucq

QUERY_TEXT = (
    "Q(a, b, c) :- R(a, b), S(b, c) ; Q(a, b, c) :- R(a, b), T(b, c)"
)


def build_database(left_rows: int, keys: int, partners: int) -> Database:
    """Two chain members sharing R; S and T overlap on half their rows, so
    the S∩T intersection index is nonempty and genuinely maintained."""
    half = partners // 2
    return Database([
        Relation("R", ("a", "b"), [(i, i % keys) for i in range(left_rows)]),
        Relation(
            "S",
            ("b", "c"),
            [(j, k) for j in range(keys) for k in range(partners)],
        ),
        Relation(
            "T",
            ("b", "c"),
            [(j, k + half) for j in range(keys) for k in range(partners)],
        ),
    ])


def update_stream(n_updates: int, left_rows: int, keys: int, partners: int, seed: int):
    """A mixed stream: fresh-R insert/delete pairs (both members update)
    interleaved with S/T writes that flip intersection membership."""
    rng = random.Random(seed)
    stream = []
    fresh = left_rows
    extra_c = 10 * partners  # values no initial S/T row uses
    for step in range(n_updates):
        phase = step % 4
        if phase == 0:
            stream.append(("insert", "R", (fresh, rng.randrange(keys))))
            fresh += 1
        elif phase == 1:
            # Delete the row the previous step inserted: keeps |D| stable.
            stream.append(("delete", "R", stream[-1][2]))
        elif phase == 2:
            # A fresh S row; the matching T row arrives... never — this
            # exercises the member-only (non-intersection) transition.
            stream.append(("insert", "S", (rng.randrange(keys), extra_c + step)))
        else:
            # Delete an original T row that S also holds: an S∩T exit.
            stream.append(("delete", "T", (rng.randrange(keys), partners - 1)))
    return stream


def timed(thunk):
    """Time one call with the cyclic GC paused (see bench_batch.timed)."""
    gc.collect()
    enabled = gc.isenabled()
    gc.disable()
    try:
        started = time.perf_counter()
        result = thunk()
        elapsed = time.perf_counter() - started
    finally:
        if enabled:
            gc.enable()
    return elapsed, result


def mutate_and_requery(service: QueryService, query, updates, counts, page_size=10):
    """Apply every update, re-serving count + first page after each."""
    for operation, relation, row in updates:
        if operation == "insert":
            service.insert(relation, row)
        else:
            service.delete(relation, row)
        count = service.count(query)
        counts.append(count)
        if count:
            service.page(query, 0, page_size=page_size)


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--smoke", action="store_true",
                        help="small instance, modest bar (CI sanity run)")
    parser.add_argument("--updates", type=int, default=None,
                        help="length of the update stream (default 16, smoke 8)")
    parser.add_argument("--seed", type=int, default=20200614)
    parser.add_argument("--json", default="BENCH_union_dynamic.json",
                        help="where to write the measured numbers")
    args = parser.parse_args(argv)

    if args.smoke:
        left_rows, keys, partners = 1_000, 50, 4
        required_speedup = 2.0
    else:
        left_rows, keys, partners = 80_000, 500, 20
        required_speedup = 5.0
    n_updates = args.updates if args.updates is not None else (8 if args.smoke else 16)

    query = parse_ucq(QUERY_TEXT)
    db_dynamic = build_database(left_rows, keys, partners)
    db_rebuild = build_database(left_rows, keys, partners)
    updates = update_stream(n_updates, left_rows, keys, partners, args.seed)

    dynamic_service = QueryService(db_dynamic, dynamic=True)
    rebuild_service = QueryService(db_rebuild, dynamic=False)
    # Warm both caches: the gate measures the mutate-then-requery loop on a
    # hot union, not the initial build.
    warm_dynamic, __ = timed(lambda: dynamic_service.count(query))
    warm_rebuild, __ = timed(lambda: rebuild_service.count(query))
    n_facts = db_dynamic.size()
    print(f"|D| = {n_facts} facts, |Q(D)| = {dynamic_service.count(query)}, "
          f"{n_updates} updates")
    print(f"warm build     : dynamic {warm_dynamic:.3f}s  "
          f"static {warm_rebuild:.3f}s")

    dynamic_counts, rebuild_counts = [], []
    dynamic_seconds, __ = timed(
        lambda: mutate_and_requery(dynamic_service, query, updates, dynamic_counts))
    rebuild_seconds, __ = timed(
        lambda: mutate_and_requery(rebuild_service, query, updates, rebuild_counts))

    if dynamic_counts != rebuild_counts:
        print("FAIL: dynamic and rebuild paths disagree on counts")
        return 1
    stats = dynamic_service.stats()
    if stats.in_place_updates != n_updates:
        print(f"FAIL: expected {n_updates} in-place updates, "
              f"service recorded {stats.in_place_updates}")
        return 1
    n = dynamic_service.count(query)
    final_dynamic = dynamic_service.batch(query, range(n))
    final_rebuild = rebuild_service.batch(query, range(n))
    if final_dynamic != final_rebuild:
        print("FAIL: final enumerations differ between the two paths "
              "(order maintenance is broken, not just the answer set)")
        return 1
    del final_dynamic, final_rebuild

    speedup = rebuild_seconds / dynamic_seconds
    print(f"mutate+requery : rebuild {rebuild_seconds:.3f}s  "
          f"dynamic {dynamic_seconds:.3f}s  speedup {speedup:.1f}x")

    from conftest import emit_bench

    emit_bench(
        "bench_union_dynamic", speedup, required_speedup, args.json,
        params={
            "query": QUERY_TEXT,
            "facts": n_facts,
            "answers": n,
            "updates": n_updates,
            "warm_build_dynamic_seconds": round(warm_dynamic, 6),
            "warm_build_static_seconds": round(warm_rebuild, 6),
            "dynamic_seconds": round(dynamic_seconds, 6),
            "rebuild_seconds": round(rebuild_seconds, 6),
            "in_place_updates": stats.in_place_updates,
        },
        smoke=args.smoke,
    )

    if speedup < required_speedup:
        print(f"FAIL: mutate+requery speedup {speedup:.1f}x "
              f"below required {required_speedup:.1f}x")
        return 1
    print(f"OK: dynamic union path is {speedup:.1f}x invalidate-and-rebuild "
          f"(required {required_speedup:.1f}x)")
    return 0


if __name__ == "__main__":
    sys.exit(main())
