"""Acceptance gate: HTTP readers stay fast and consistent under ingest.

The serving-tier question: four HTTP clients are paging a hot **dynamic
mc-UCQ** through server-side cursor sessions (real sockets, the stdlib
thread-per-connection bridge) while JSONL ``Delta`` batches stream into
``POST /ingest``. The gate asserts the two properties the tier promises:

* **throughput** — aggregate reader throughput under the ingest stream
  stays within **2×** of the read-only baseline, measured over equal
  windows (readers ride wait-free snapshot reads; the writer never
  blocks them — only the GIL is shared);
* **consistency** — every page matches its pinned version's answers.
  The workload makes this checkable over the wire: ``R`` is a static
  bulk plus one *generational slice*, and each ingest batch swaps the
  whole current generation of that slice for the next one (one
  ``Delta``, one version bump). The generation visible at version ``v``
  is exactly ``v - v₀ + 1``, so readers — on strict
  ``on_stale="raise"`` sessions (``409`` → refresh) — assert every page
  carries answers of at most one generation *and* that it is the one
  its reported ``version`` pins. A page assembled across a version
  boundary, or tagged with the wrong version, fails the run.

Usage
-----
``PYTHONPATH=src python benchmarks/bench_http.py``          (full, ≥1e5 facts)
``PYTHONPATH=src python benchmarks/bench_http.py --smoke``  (small, CI-fast)

Not a pytest file on purpose: like the other gates, CI runs it directly
(in ``--smoke`` mode).
"""

from __future__ import annotations

import argparse
import http.client
import json
import random
import sys
import threading
import time

from repro import Database, Relation
from repro.server import create_app, start_background

#: Generation ``g`` of R's swapped slice owns [g*STRIDE, g*STRIDE + rows).
#: Generation 0 is the static bulk that never moves.
STRIDE = 1_000_000

QUERY_TEXT = (
    "Q(a, b, c) :- R(a, b), S(b, c) ; Q(a, b, c) :- R(a, b), T(b, c)"
)


def gen_rows(generation: int, rows: int, keys: int):
    return [(generation * STRIDE + i, i % keys) for i in range(rows)]


def build_database(static_rows, slice_rows, keys, partners) -> Database:
    """The bench_concurrent_reads shape with a generational R slice: S and
    T overlap on half their partner rows, so the union is a genuine
    mc-UCQ (per R row: ``partners`` S-matches + ``partners`` T-matches,
    half shared → 1.5 × partners distinct answers)."""
    half = partners // 2
    return Database([
        Relation(
            "R", ("a", "b"),
            gen_rows(0, static_rows, keys) + gen_rows(1, slice_rows, keys),
        ),
        Relation(
            "S", ("b", "c"),
            [(j, k) for j in range(keys) for k in range(partners)],
        ),
        Relation(
            "T", ("b", "c"),
            [(j, k + half) for j in range(keys) for k in range(partners)],
        ),
    ])


def swap_body(old: int, new: int, rows: int, keys: int) -> bytes:
    """The JSONL ingest body replacing slice generation ``old`` with ``new``."""
    ops = [
        {"op": "delete", "relation": "R", "row": list(row)}
        for row in gen_rows(old, rows, keys)
    ] + [
        {"op": "insert", "relation": "R", "row": list(row)}
        for row in gen_rows(new, rows, keys)
    ]
    return "".join(json.dumps(op) + "\n" for op in ops).encode("utf-8")


class HttpClient:
    """A keep-alive JSON client on one persistent connection."""

    def __init__(self, port: int):
        self.conn = http.client.HTTPConnection("127.0.0.1", port, timeout=60)

    def request(self, method: str, path: str, body: bytes = None):
        self.conn.request(method, path, body=body)
        response = self.conn.getresponse()
        return response.status, json.loads(response.read())

    def close(self):
        self.conn.close()


class ReaderStats:
    __slots__ = ("pages", "answers", "generational_pages", "refreshes")

    def __init__(self):
        self.pages = 0
        self.answers = 0
        self.generational_pages = 0
        self.refreshes = 0


def run_readers(port, n_readers, page_size, pages_hot, base_version,
                seconds=None, writer=None):
    """Readers page for a fixed window (or until ``writer`` returns);
    returns (stats, window_seconds)."""
    start = threading.Barrier(n_readers + 1)
    done = threading.Event()
    stats = [ReaderStats() for __ in range(n_readers)]
    errors = []

    def reader(position):
        rng = random.Random(1000 + position)
        mine = stats[position]
        client = HttpClient(port)
        try:
            status, session = client.request(
                "POST", "/cursors",
                body=json.dumps(
                    {"query": QUERY_TEXT, "on_stale": "raise"}
                ).encode(),
            )
            assert status == 201, session
            sid = session["cursor"]
            start.wait()
            while not done.is_set():
                number = rng.randrange(pages_hot)
                status, payload = client.request(
                    "GET", f"/cursors/{sid}/page?number={number}&size={page_size}"
                )
                if status == 409:
                    # Stale: acknowledge and re-bind (refresh itself may
                    # lose the race to yet another swap — just continue).
                    status, __ = client.request(
                        "POST", f"/cursors/{sid}/refresh"
                    )
                    assert status in (200, 409)
                    mine.refreshes += 1
                    continue
                assert status == 200, payload
                generations = {
                    a // STRIDE for a, _b, _c in payload["answers"]
                } - {0}  # generation 0 is the static bulk
                if generations:
                    # At most one slice generation per page, and exactly
                    # the one the page's pinned version publishes.
                    expected = payload["version"] - base_version + 1
                    if generations != {expected}:
                        raise AssertionError(
                            f"version {payload['version']} served slice "
                            f"generation(s) {sorted(generations)}, "
                            f"expected {{{expected}}}"
                        )
                    mine.generational_pages += 1
                mine.pages += 1
                mine.answers += len(payload["answers"])
        except Exception as exc:  # pragma: no cover - the failure mode
            errors.append(exc)
            done.set()
        finally:
            client.close()

    threads = [
        threading.Thread(target=reader, args=(position,))
        for position in range(n_readers)
    ]
    for thread in threads:
        thread.start()
    start.wait()
    began = time.perf_counter()
    if writer is not None:
        writer()
    else:
        time.sleep(seconds)
    window = time.perf_counter() - began
    done.set()
    for thread in threads:
        thread.join(timeout=300)
    if errors:
        raise errors[0]
    return stats, window


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--smoke", action="store_true",
                        help="small instance, CI sanity run")
    parser.add_argument("--readers", type=int, default=4)
    parser.add_argument("--json", default="BENCH_http.json",
                        help="where to write the measured numbers")
    args = parser.parse_args(argv)

    if args.smoke:
        static_rows, slice_rows, keys, partners = 500, 100, 60, 20
        generations, pause = 5, 0.15
        page_size, pages_hot = 20, 20
        max_slowdown = 3.0  # looser: smoke windows are noise-dominated
    else:
        static_rows, slice_rows, keys, partners = 3_400, 600, 500, 100
        generations, pause = 12, 0.3
        page_size, pages_hot = 50, 100
        max_slowdown = 2.0  # the acceptance bar: within 2x of read-only

    # Reader and writer threads are CPU-bound Python; a 1ms GIL quantum
    # keeps scheduling noise out of both measured windows alike.
    sys.setswitchinterval(0.001)

    database = build_database(static_rows, slice_rows, keys, partners)
    app = create_app(database, dynamic=True, session_ttl=None)
    base_version = database.version
    service = app.service
    answers = service.count(QUERY_TEXT)  # warm the dynamic union entry
    print(f"|D| = {database.size()} facts, |Q(D)| = {answers}, "
          f"{generations} slice swaps x {2 * slice_rows} ops "
          f"every {pause}s, {args.readers} HTTP readers (page {page_size})")

    server, thread, port = start_background(app)
    try:
        writer_client = HttpClient(port)

        def writer():
            # A paced stream: one whole-generation slice swap per tick.
            for generation in range(1, generations + 1):
                status, payload = writer_client.request(
                    "POST", "/ingest",
                    swap_body(generation, generation + 1, slice_rows, keys),
                )
                assert status == 200, payload
                assert payload["inserted"] == slice_rows, payload
                assert payload["deleted"] == slice_rows, payload
                assert payload["version"] == base_version + generation
                time.sleep(pause)

        concurrent_stats, concurrent_window = run_readers(
            port, args.readers, page_size, pages_hot, base_version,
            writer=writer,
        )
        # Read-only baseline over the identical window length (the slice
        # swaps preserve every cardinality, so the workload is the same).
        baseline_stats, baseline_window = run_readers(
            port, args.readers, page_size, pages_hot, base_version,
            seconds=concurrent_window,
        )
        writer_client.close()
    finally:
        server.shutdown()
        thread.join(timeout=30)

    baseline_pages = sum(s.pages for s in baseline_stats)
    concurrent_pages = sum(s.pages for s in concurrent_stats)
    generational = sum(s.generational_pages for s in concurrent_stats)
    refreshes = sum(s.refreshes for s in concurrent_stats)
    baseline_tput = baseline_pages / baseline_window
    concurrent_tput = concurrent_pages / concurrent_window
    if baseline_pages == 0 or concurrent_pages == 0:
        print("FAIL: a reader arm served no pages")
        return 1
    if generational == 0:
        print("FAIL: no page ever touched the swapped slice — the "
              "consistency check never engaged")
        return 1
    slowdown = baseline_tput / concurrent_tput
    # The emitted headline keeps the gate's >= convention: how far inside
    # the allowed degradation envelope the concurrent arm landed.
    measured = max_slowdown / slowdown

    print(f"with ingest: {concurrent_pages} pages in {concurrent_window:.2f}s "
          f"({concurrent_tput:.0f}/s), {generational} pages touched the "
          f"slice, {refreshes} stale refreshes")
    print(f"read-only  : {baseline_pages} pages in {baseline_window:.2f}s "
          f"({baseline_tput:.0f}/s)")
    print(f"slowdown {slowdown:.2f}x (allowed {max_slowdown:.1f}x)")

    from conftest import emit_bench

    emit_bench(
        "bench_http",
        measured,
        1.0,
        args.json,
        params={
            "query": QUERY_TEXT,
            "facts": database.size(),
            "answers": answers,
            "readers": args.readers,
            "page_size": page_size,
            "generations": generations,
            "ops_per_swap": 2 * slice_rows,
            "swap_pause_seconds": pause,
            "baseline_pages": baseline_pages,
            "baseline_window_seconds": round(baseline_window, 6),
            "baseline_pages_per_second": round(baseline_tput, 2),
            "concurrent_pages": concurrent_pages,
            "concurrent_window_seconds": round(concurrent_window, 6),
            "concurrent_pages_per_second": round(concurrent_tput, 2),
            "generational_pages": generational,
            "stale_refreshes": refreshes,
            "slowdown": round(slowdown, 3),
            "max_slowdown": max_slowdown,
        },
        smoke=args.smoke,
    )

    if slowdown > max_slowdown:
        print(f"FAIL: readers degraded {slowdown:.2f}x under ingest "
              f"(allowed {max_slowdown:.1f}x)")
        return 1
    print(f"OK: HTTP readers stayed within {slowdown:.2f}x of the read-only "
          f"baseline under streaming ingest (allowed {max_slowdown:.1f}x), "
          f"every page version-consistent")
    return 0


if __name__ == "__main__":
    sys.exit(main())
