"""Appendix B.2.3 — Sample(RS) cannot produce 1% of Q3's answers."""

from repro.experiments.figures import rs_note


def test_rs_note(benchmark, config, results_dir):
    result = benchmark.pedantic(rs_note, args=(config,), rounds=1, iterations=1)
    text = result.render()
    (results_dir / "rs_note.txt").write_text(text)
    print(text)
