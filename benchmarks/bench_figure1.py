"""Figure 1 — total enumeration time of REnum(CQ) vs Sample(EW).

Six panels (Q0, Q2, Q3, Q7, Q9, Q10), k ∈ {1, 5, 10, 30, 50, 70, 90}% of
the answers, preprocessing and enumeration reported separately.
"""

from repro.experiments.figures import figure1


def test_figure1(benchmark, config, results_dir):
    result = benchmark.pedantic(figure1, args=(config,), rounds=1, iterations=1)
    text = result.render()
    (results_dir / "figure1.txt").write_text(text)
    print(text)
