"""Acceptance gate: the read plane survives a write-path fault storm.

The fault-tolerance question: four HTTP readers are paging a hot dynamic
mc-UCQ through server-side cursor sessions (real sockets, the stdlib
bridge) when the WAL's fsync path starts failing with ``ENOSPC`` — a
full disk under the durable store. The gate asserts the degraded-mode
contract end to end:

* **reads hold** — aggregate reader throughput during the storm stays at
  **≥ 0.5×** the healthy baseline over an equal window (reads are
  wait-free snapshot probes; a dead write path must not drag them down);
* **pages stay version-consistent** — the generational-slice check of
  ``bench_http`` runs throughout (every page's answers match the
  version it reports);
* **writes shed cleanly** — every ingest during the storm answers
  ``503`` + ``Retry-After`` (the first failure flips the service into
  degraded read-only mode; later writes shed without touching the dying
  device outside the probe cadence), and ``/healthz`` reports
  ``status: degraded`` with the root cause;
* **self-healing** — once the fault clears, the **first** post-storm
  ingest (after the probe interval) succeeds and ``/healthz`` returns to
  ``ok`` — no restart, no operator intervention.

Usage
-----
``PYTHONPATH=src python benchmarks/bench_fault_tolerance.py``
``PYTHONPATH=src python benchmarks/bench_fault_tolerance.py --smoke``

Not a pytest file on purpose: like the other gates, CI runs it directly
(in ``--smoke`` mode).
"""

from __future__ import annotations

import argparse
import sys
import tempfile
import time

from repro import faults
from repro.server import create_app, start_background

from bench_http import (
    QUERY_TEXT,
    HttpClient,
    build_database,
    run_readers,
    swap_body,
)

#: Reader throughput during the storm must stay at or above this
#: fraction of the healthy baseline.
MIN_HOLD = 0.5


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--smoke", action="store_true",
                        help="small instance, CI sanity run")
    parser.add_argument("--readers", type=int, default=4)
    parser.add_argument("--json", default="BENCH_fault_tolerance.json",
                        help="where to write the measured numbers")
    args = parser.parse_args(argv)

    if args.smoke:
        static_rows, slice_rows, keys, partners = 500, 100, 60, 20
        window, page_size, pages_hot = 1.5, 20, 20
    else:
        static_rows, slice_rows, keys, partners = 3_400, 600, 500, 100
        window, page_size, pages_hot = 4.0, 50, 100
    probe_interval = 0.1
    storm_ingest_pause = 0.05

    sys.setswitchinterval(0.001)

    database = build_database(static_rows, slice_rows, keys, partners)
    storage = tempfile.mkdtemp(prefix="bench-fault-")
    app = create_app(
        database, storage=storage, dynamic=True, session_ttl=None
    )
    app.service.degraded_probe_interval = probe_interval
    base_version = database.version
    answers = app.service.count(QUERY_TEXT)  # warm the dynamic union entry
    print(f"|D| = {database.size()} facts, |Q(D)| = {answers}, "
          f"{args.readers} HTTP readers (page {page_size}), "
          f"durable store {storage}")

    server, thread, port = start_background(app)
    try:
        control = HttpClient(port)

        # ---- phase 1: healthy baseline ------------------------------- #
        healthy_stats, healthy_window = run_readers(
            port, args.readers, page_size, pages_hot, base_version,
            seconds=window,
        )
        healthy_pages = sum(s.pages for s in healthy_stats)
        healthy_tput = healthy_pages / healthy_window
        print(f"healthy: {healthy_pages} pages in {healthy_window:.2f}s "
              f"({healthy_tput:.0f}/s)")

        # ---- phase 2: ENOSPC fault storm on the WAL fsync path ------- #
        storm_statuses = []

        def storm_writer():
            # Hammer the write path for the whole window; every attempt
            # must shed with 503 (the slice swap body is the real
            # workload's write, not a toy no-op).
            deadline = time.monotonic() + window
            writer_client = HttpClient(port)
            body = swap_body(1, 2, slice_rows, keys)
            try:
                while time.monotonic() < deadline:
                    status, payload = writer_client.request(
                        "POST", "/ingest", body
                    )
                    storm_statuses.append(status)
                    time.sleep(storm_ingest_pause)
            finally:
                writer_client.close()

        faults.arm("wal.fsync", "error(ENOSPC)")
        storm_stats, storm_window = run_readers(
            port, args.readers, page_size, pages_hot, base_version,
            writer=storm_writer,
        )
        health = control.request("GET", "/healthz")[1]
        faults.disarm_all()

        storm_pages = sum(s.pages for s in storm_stats)
        storm_tput = storm_pages / storm_window
        rejected = sum(1 for status in storm_statuses if status == 503)
        print(f"storm  : {storm_pages} pages in {storm_window:.2f}s "
              f"({storm_tput:.0f}/s), {len(storm_statuses)} ingest "
              f"attempts, {rejected} x 503")

        if not storm_statuses or rejected != len(storm_statuses):
            print(f"FAIL: expected every storm ingest to answer 503, got "
                  f"{sorted(set(storm_statuses))}")
            return 1
        if health.get("status") != "degraded":
            print(f"FAIL: /healthz during the storm said {health!r}, "
                  f"expected status=degraded")
            return 1

        # ---- phase 3: recovery without restart ----------------------- #
        time.sleep(probe_interval * 1.5)
        status, payload = control.request(
            "POST", "/ingest", swap_body(1, 2, slice_rows, keys)
        )
        if status != 200:
            print(f"FAIL: first post-storm ingest answered {status}: "
                  f"{payload}")
            return 1
        recovered_health = control.request("GET", "/healthz")[1]
        if recovered_health.get("status") != "ok":
            print(f"FAIL: /healthz after recovery said {recovered_health!r}")
            return 1
        print(f"recovered: first post-storm ingest applied "
              f"{payload['ops']} ops at version {payload['version']}, "
              f"healthz ok")
        stats_payload = control.request("GET", "/stats")[1]["service"]
        control.close()
    finally:
        server.shutdown()
        thread.join(timeout=30)
        faults.disarm_all()

    generational = sum(s.generational_pages for s in storm_stats)
    if healthy_pages == 0 or storm_pages == 0:
        print("FAIL: a reader arm served no pages")
        return 1
    if generational == 0:
        print("FAIL: no storm page touched the generational slice — the "
              "consistency check never engaged")
        return 1

    hold = storm_tput / healthy_tput
    measured = hold / MIN_HOLD

    from conftest import emit_bench

    emit_bench(
        "bench_fault_tolerance",
        measured,
        1.0,
        args.json,
        params={
            "query": QUERY_TEXT,
            "facts": database.size(),
            "answers": answers,
            "readers": args.readers,
            "page_size": page_size,
            "window_seconds": window,
            "probe_interval_seconds": probe_interval,
            "healthy_pages": healthy_pages,
            "healthy_pages_per_second": round(healthy_tput, 2),
            "storm_pages": storm_pages,
            "storm_pages_per_second": round(storm_tput, 2),
            "storm_ingest_attempts": len(storm_statuses),
            "storm_ingest_503s": rejected,
            "generational_pages": generational,
            "throughput_hold": round(hold, 3),
            "min_hold": MIN_HOLD,
            "degraded_entries": stats_payload["degraded_entries"],
            "degraded_seconds": round(stats_payload["degraded_seconds"], 3),
            "faults_injected": stats_payload["faults_injected"],
        },
        smoke=args.smoke,
    )

    if hold < MIN_HOLD:
        print(f"FAIL: readers held only {hold:.2f}x of healthy throughput "
              f"during the fault storm (required >= {MIN_HOLD}x)")
        return 1
    print(f"OK: readers held {hold:.2f}x of healthy throughput through an "
          f"ENOSPC fault storm (required >= {MIN_HOLD}x), every page "
          f"version-consistent, writes shed with 503, first post-storm "
          f"ingest succeeded without restart")
    return 0


if __name__ == "__main__":
    sys.exit(main())
