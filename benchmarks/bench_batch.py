"""Throughput benchmark: batched vs. scalar random access.

Measures, at n ≈ 10⁵ answers, the wall-clock of

* the scalar loop ``[index.access(i) for i in positions]``,
* one ``index.batch(positions)`` call (same positions, random order),
* a sorted (pagination-shaped) batch,
* ``sample_many(k)`` vs. ``k`` sequential REnum draws,
* a cached-service page sweep vs. rebuilding the index per page,

verifies batch/scalar equivalence on every workload, and enforces the
acceptance bar — batch ≥ 5× scalar on the full-size random workload.

Usage
-----
``PYTHONPATH=src python benchmarks/bench_batch.py``          (full, asserts 5×)
``PYTHONPATH=src python benchmarks/bench_batch.py --smoke``  (small, CI-fast,
asserts equivalence and a modest ≥ 1.5× bar)

Not a pytest file on purpose: the figure benchmarks are pytest-benchmark
driven, but this one is an acceptance gate that CI runs directly.
"""

from __future__ import annotations

import argparse
import gc
import random
import sys
import time

from repro import CQIndex, Database, QueryService, Relation, parse_cq
from repro.core.permutation import RandomPermutationEnumerator


def build_instance(answers_per_key: int, keys: int, left_rows: int):
    """A two-atom chain with |answers| = left_rows × answers_per_key.

    ``R1(x0, x1)`` fans each of ``left_rows`` rows into one of ``keys``
    join keys; ``R2(x1, x2)`` gives every key ``answers_per_key``
    partners.
    """
    database = Database([
        Relation("R1", ("x0", "x1"), [(i, i % keys) for i in range(left_rows)]),
        Relation(
            "R2",
            ("x1", "x2"),
            [(j, k) for j in range(keys) for k in range(answers_per_key)],
        ),
    ])
    query = parse_cq("Q(x0, x1, x2) :- R1(x0, x1), R2(x1, x2)")
    return query, database


def timed(thunk):
    """Time one call with the cyclic GC paused.

    The workloads allocate 10⁵-element lists of tuples; letting a cycle
    collection land inside one arm of an A/B measurement skews it by tens
    of percent, so each arm runs GC-quiesced and collection happens
    between measurements.
    """
    gc.collect()
    enabled = gc.isenabled()
    gc.disable()
    try:
        started = time.perf_counter()
        result = thunk()
        elapsed = time.perf_counter() - started
    finally:
        if enabled:
            gc.enable()
    return elapsed, result


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--smoke", action="store_true",
                        help="small instance, no 5x assertion (CI sanity run)")
    parser.add_argument("--seed", type=int, default=20200614)
    parser.add_argument("--json", default="BENCH_batch.json",
                        help="where to write the measured numbers")
    args = parser.parse_args(argv)

    if args.smoke:
        query, database = build_instance(answers_per_key=10, keys=10, left_rows=200)
        required_speedup = 1.5
    else:
        query, database = build_instance(answers_per_key=50, keys=50, left_rows=2000)
        required_speedup = 5.0

    rng = random.Random(args.seed)
    built, index = timed(lambda: CQIndex(query, database))
    n = index.count
    k = n
    positions = [rng.randrange(n) for __ in range(k)]
    print(f"answers n={n}, batch size k={k}, preprocessing {built:.3f}s")

    repeats = 1 if args.smoke else 3
    scalar_seconds = batch_seconds = float("inf")
    for __ in range(repeats):
        seconds, scalar = timed(lambda: [index.access(i) for i in positions])
        scalar_seconds = min(scalar_seconds, seconds)
        seconds, batched = timed(lambda: index.batch(positions))
        batch_seconds = min(batch_seconds, seconds)
        if batched != scalar:
            print("FAIL: batch(positions) != scalar loop")
            return 1
        del scalar, batched
    speedup = scalar_seconds / batch_seconds
    print(f"random batch   : scalar {scalar_seconds:.3f}s  "
          f"batch {batch_seconds:.3f}s  speedup {speedup:.1f}x")

    sorted_positions = sorted(positions)
    sorted_scalar_s, sorted_scalar = timed(
        lambda: [index.access(i) for i in sorted_positions])
    sorted_batch_s, sorted_batch = timed(lambda: index.batch(sorted_positions))
    if sorted_batch != sorted_scalar:
        print("FAIL: sorted batch != scalar loop")
        return 1
    del sorted_scalar, sorted_batch
    print(f"sorted batch   : scalar {sorted_scalar_s:.3f}s  "
          f"batch {sorted_batch_s:.3f}s  speedup {sorted_scalar_s / sorted_batch_s:.1f}x")

    draws = max(1, k // 2)
    sample_seconds, sampled = timed(
        lambda: index.sample_many(draws, random.Random(args.seed)))
    def sequential():
        enumerator = RandomPermutationEnumerator(index, rng=random.Random(args.seed))
        return [next(enumerator) for __ in range(draws)]
    sequential_seconds, sequential_draws = timed(sequential)
    if sampled != sequential_draws:
        print("FAIL: sample_many != sequential REnum draws")
        return 1
    del sampled, sequential_draws
    print(f"sample_many    : sequential {sequential_seconds:.3f}s  "
          f"batched {sample_seconds:.3f}s  "
          f"speedup {sequential_seconds / sample_seconds:.1f}x")

    page_size = 100
    pages = list(range(0, n // page_size, max(1, (n // page_size) // 50)))
    service = QueryService(database)
    rebuild_seconds, __ = timed(lambda: [
        CQIndex(query, database).batch(
            range(p * page_size, min((p + 1) * page_size, n)))
        for p in pages
    ])
    cached_seconds, __ = timed(lambda: [
        service.page(query, p, page_size=page_size) for p in pages
    ])
    print(f"{len(pages)} pages       : rebuild-per-page {rebuild_seconds:.3f}s  "
          f"cached service {cached_seconds:.3f}s  "
          f"speedup {rebuild_seconds / cached_seconds:.1f}x")

    from conftest import emit_bench

    emit_bench(
        "bench_batch", speedup, required_speedup, args.json,
        params={
            "query": "Q(x0, x1, x2) :- R1(x0, x1), R2(x1, x2)",
            "answers": n,
            "batch_size": k,
            "preprocessing_seconds": round(built, 6),
            "scalar_seconds": round(scalar_seconds, 6),
            "batch_seconds": round(batch_seconds, 6),
            "sorted_scalar_seconds": round(sorted_scalar_s, 6),
            "sorted_batch_seconds": round(sorted_batch_s, 6),
            "sample_sequential_seconds": round(sequential_seconds, 6),
            "sample_batched_seconds": round(sample_seconds, 6),
            "page_rebuild_seconds": round(rebuild_seconds, 6),
            "page_cached_seconds": round(cached_seconds, 6),
        },
        smoke=args.smoke,
    )

    if speedup < required_speedup:
        print(f"FAIL: random-batch speedup {speedup:.1f}x "
              f"below required {required_speedup:.1f}x")
        return 1
    print(f"OK: batch is {speedup:.1f}x scalar "
          f"(required {required_speedup:.1f}x)")
    return 0


if __name__ == "__main__":
    sys.exit(main())
