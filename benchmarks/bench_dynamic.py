"""Dynamic-index extension: update cost vs. rebuilding the static index.

Not a paper figure — the paper's index is static — but its Related Work
([6], answering UCQs under updates) motivates the comparison: a single
tuple update costs O(depth·log) in the dynamic index versus a full O(|D|)
static rebuild, while access latency stays logarithmic.
"""

import random

import pytest

from repro import CQIndex, Database, DynamicCQIndex, Relation, parse_cq

QUERY = parse_cq("Q(a, b, c, d) :- R(a, b), S(b, c), T(c, d)")


def _database(n: int) -> Database:
    return Database([
        Relation("R", ("a", "b"), [(i, i % (n // 8 or 1)) for i in range(n)]),
        Relation("S", ("b", "c"), [(i % (n // 8 or 1), i % (n // 16 or 1)) for i in range(n // 2)]),
        Relation("T", ("c", "d"), [(i % (n // 16 or 1), i) for i in range(n // 2)]),
    ])


@pytest.mark.parametrize("n", [2000, 8000])
def test_dynamic_update_throughput(benchmark, n):
    db = _database(n)
    index = DynamicCQIndex(QUERY, db)
    rng = random.Random(1)
    keys = n // 8

    def update_batch():
        for i in range(200):
            row = (n + i, rng.randrange(keys))
            index.insert("R", row)
            index.delete("R", row)

    benchmark(update_batch)
    assert index.count > 0
    benchmark.extra_info["answers"] = index.count


@pytest.mark.parametrize("n", [2000, 8000])
def test_static_rebuild_cost(benchmark, n):
    """The alternative the dynamic index avoids: rebuild per update."""
    db = _database(n)

    def rebuild():
        return CQIndex(QUERY, db).count

    count = benchmark(rebuild)
    assert count > 0


@pytest.mark.parametrize("n", [2000, 8000])
def test_dynamic_access_after_updates(benchmark, n):
    db = _database(n)
    index = DynamicCQIndex(QUERY, db)
    rng = random.Random(2)
    for i in range(100):
        index.insert("R", (n + i, rng.randrange(n // 8)))
    positions = [rng.randrange(index.count) for __ in range(256)]

    def access_batch():
        for position in positions:
            index.access(position)

    benchmark(access_batch)
