"""Acceptance gate: the dynamic mutation path vs. invalidate-and-rebuild.

The serving question behind ``QueryService``'s update-in-place mode: a hot
query is cached, the database takes single-tuple writes, and every write is
followed by a re-query (count + first page — a live search page under
churn). Two services process the identical update stream:

* ``dynamic=True`` — the cached :class:`~repro.core.dynamic.DynamicCQIndex`
  absorbs each write in O(depth · log) and is re-keyed to the new database
  version;
* ``dynamic=False`` — each write invalidates the cached
  :class:`~repro.core.cq_index.CQIndex`, so the next re-query pays a full
  O(|D|) rebuild.

The gate asserts the dynamic path is ≥ 10× faster at ~10⁵ facts (the
ISSUE 2 acceptance bar), verifies count agreement after every update and
answer-set agreement at the end, and writes the measured numbers to
``BENCH_dynamic.json`` so the perf trajectory records write-path numbers.

Usage
-----
``PYTHONPATH=src python benchmarks/bench_dynamic.py``          (full, asserts 10×)
``PYTHONPATH=src python benchmarks/bench_dynamic.py --smoke``  (small, CI-fast,
asserts equivalence and a modest ≥ 2× bar)

Not a pytest file on purpose: like ``bench_batch.py``, this is an
acceptance gate that CI runs directly.
"""

from __future__ import annotations

import argparse
import gc
import random
import sys
import time

from repro import Database, QueryService, Relation, parse_cq

QUERY_TEXT = "Q(a, b, c) :- R(a, b), S(b, c)"


def build_database(left_rows: int, keys: int, partners: int) -> Database:
    """A two-atom chain: |D| ≈ left_rows + keys·partners facts,
    |answers| = left_rows × partners."""
    return Database([
        Relation("R", ("a", "b"), [(i, i % keys) for i in range(left_rows)]),
        Relation(
            "S",
            ("b", "c"),
            [(j, k) for j in range(keys) for k in range(partners)],
        ),
    ])


def update_stream(n_updates: int, left_rows: int, keys: int, seed: int):
    """Alternating inserts and deletes of fresh R facts (every one a real
    change, so both services do real work on every step)."""
    rng = random.Random(seed)
    stream = []
    fresh = left_rows
    for step in range(n_updates):
        if step % 2 == 0:
            row = (fresh, rng.randrange(keys))
            stream.append(("insert", "R", row))
            fresh += 1
        else:
            # Delete the row the previous step inserted: keeps |D| stable.
            stream.append(("delete", "R", stream[-1][2]))
    return stream


def timed(thunk):
    """Time one call with the cyclic GC paused (see bench_batch.timed)."""
    gc.collect()
    enabled = gc.isenabled()
    gc.disable()
    try:
        started = time.perf_counter()
        result = thunk()
        elapsed = time.perf_counter() - started
    finally:
        if enabled:
            gc.enable()
    return elapsed, result


def mutate_and_requery(service: QueryService, query, updates, counts, page_size=10):
    """Apply every update, re-serving count + first page after each."""
    for operation, relation, row in updates:
        if operation == "insert":
            service.insert(relation, row)
        else:
            service.delete(relation, row)
        count = service.count(query)
        counts.append(count)
        if count:
            service.page(query, 0, page_size=page_size)


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--smoke", action="store_true",
                        help="small instance, modest bar (CI sanity run)")
    parser.add_argument("--updates", type=int, default=None,
                        help="length of the update stream (default 40, smoke 12)")
    parser.add_argument("--seed", type=int, default=20200614)
    parser.add_argument("--json", default="BENCH_dynamic.json",
                        help="where to write the measured numbers")
    args = parser.parse_args(argv)

    if args.smoke:
        left_rows, keys, partners = 2_000, 100, 2
        required_speedup = 2.0
    else:
        left_rows, keys, partners = 100_000, 1_000, 2
        required_speedup = 10.0
    n_updates = args.updates if args.updates is not None else (12 if args.smoke else 40)

    query = parse_cq(QUERY_TEXT)
    db_dynamic = build_database(left_rows, keys, partners)
    db_rebuild = build_database(left_rows, keys, partners)
    updates = update_stream(n_updates, left_rows, keys, args.seed)

    dynamic_service = QueryService(db_dynamic, dynamic=True)
    rebuild_service = QueryService(db_rebuild, dynamic=False)
    # Warm both caches: the gate measures the mutate-then-requery loop on a
    # hot query, not the initial build.
    warm_dynamic, __ = timed(lambda: dynamic_service.count(query))
    warm_rebuild, __ = timed(lambda: rebuild_service.count(query))
    n_facts = db_dynamic.size()
    print(f"|D| = {n_facts} facts, |Q(D)| = {dynamic_service.count(query)}, "
          f"{n_updates} updates")
    print(f"warm build     : dynamic {warm_dynamic:.3f}s  "
          f"static {warm_rebuild:.3f}s")

    dynamic_counts, rebuild_counts = [], []
    dynamic_seconds, __ = timed(
        lambda: mutate_and_requery(dynamic_service, query, updates, dynamic_counts))
    rebuild_seconds, __ = timed(
        lambda: mutate_and_requery(rebuild_service, query, updates, rebuild_counts))

    if dynamic_counts != rebuild_counts:
        print("FAIL: dynamic and rebuild paths disagree on counts")
        return 1
    info = dynamic_service.cache_info()
    if info.updates != n_updates:
        print(f"FAIL: expected {n_updates} in-place updates, "
              f"cache recorded {info.updates}")
        return 1
    n = dynamic_service.count(query)
    final_dynamic = sorted(dynamic_service.batch(query, range(n)))
    final_rebuild = sorted(rebuild_service.batch(query, range(n)))
    if final_dynamic != final_rebuild:
        print("FAIL: final answer sets differ between the two paths")
        return 1
    del final_dynamic, final_rebuild

    speedup = rebuild_seconds / dynamic_seconds
    print(f"mutate+requery : rebuild {rebuild_seconds:.3f}s  "
          f"dynamic {dynamic_seconds:.3f}s  speedup {speedup:.1f}x")

    from conftest import emit_bench

    emit_bench(
        "bench_dynamic", speedup, required_speedup, args.json,
        params={
            "query": QUERY_TEXT,
            "facts": n_facts,
            "answers": n,
            "updates": n_updates,
            "warm_build_dynamic_seconds": round(warm_dynamic, 6),
            "warm_build_static_seconds": round(warm_rebuild, 6),
            "dynamic_seconds": round(dynamic_seconds, 6),
            "rebuild_seconds": round(rebuild_seconds, 6),
        },
        smoke=args.smoke,
    )

    if speedup < required_speedup:
        print(f"FAIL: mutate+requery speedup {speedup:.1f}x "
              f"below required {required_speedup:.1f}x")
        return 1
    print(f"OK: dynamic path is {speedup:.1f}x invalidate-and-rebuild "
          f"(required {required_speedup:.1f}x)")
    return 0


if __name__ == "__main__":
    sys.exit(main())
