"""Figure 2 — delay box plots over a full enumeration (all six CQs)."""

from repro.experiments.figures import figure2_3


def test_figure2(benchmark, config, results_dir):
    result = benchmark.pedantic(
        figure2_3, args=(1.0, config), kwargs={"figure_name": "Figure 2"},
        rounds=1, iterations=1,
    )
    text = result.render()
    (results_dir / "figure2.txt").write_text(text)
    print(text)
