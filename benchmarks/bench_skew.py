"""Degree-skew ablation: where the Olken samplers' rejections come from.

Our dbgen substitute has near-uniform join fan-outs (each part has exactly
4 suppliers, orders have 1–7 lineitems), so Sample(EO)'s |bucket|/max bound
is nearly tight and Figure 6's EO slowdown is muted at our scale. This
bench isolates the effect on a synthetic star join whose bucket sizes are
geometrically skewed: EW is insensitive to skew, while EO's acceptance
rate collapses with the max/mean degree ratio — the mechanism behind the
paper's EO timeouts.
"""

import random

import pytest

from repro import Database, Relation, parse_cq
from repro.sampling import ExactWeightSampler, OlkenSampler, OlkenThenExactSampler

QUERY = parse_cq("Q(a, b, c) :- R(a, b), S(b, c)")


def _skewed_database(keys: int, skew: float) -> Database:
    """Child-bucket sizes follow size(k) ∝ skew^k: skew=1 is uniform.

    R is the join-tree child (bucketed by ``b``), so its bucket-size skew
    is exactly what the Olken acceptance test |bucket|/max pays for.
    """
    rows_r = []
    size = 1.0
    next_a = 0
    for key in range(keys):
        for __ in range(max(1, int(size))):
            rows_r.append((next_a, key))
            next_a += 1
        size *= skew
    rows_s = [(key, c) for key in range(keys) for c in range(3)]
    return Database([
        Relation("R", ("a", "b"), rows_r),
        Relation("S", ("b", "c"), rows_s),
    ])


@pytest.mark.parametrize("skew", [1.0, 1.3, 1.6], ids=["uniform", "mild", "heavy"])
@pytest.mark.parametrize(
    "sampler_cls", [ExactWeightSampler, OlkenSampler, OlkenThenExactSampler],
    ids=["EW", "EO", "OE"],
)
def test_sampling_under_skew(benchmark, sampler_cls, skew):
    db = _skewed_database(keys=12, skew=skew)
    sampler = sampler_cls(QUERY, db, rng=random.Random(7))

    def draw_batch():
        for __ in range(2000):
            sampler.sample()

    benchmark(draw_batch)
    benchmark.extra_info["acceptance_rate"] = round(
        sampler.statistics.acceptance_rate, 4
    )
