"""Acceptance gate: snapshot-isolated reads vs. the per-entry-lock baseline.

The question behind snapshot isolation: a hot **dynamic mc-UCQ** is cached
and serving reader traffic (pagination + sampling) when a writer starts
replaying ``Delta`` bursts. Before this PR, every read of a dynamic entry
took the entry's write lock — and a batched ``apply`` holds that lock for
the *entire* burst, so a reader's p99 latency degenerated to the burst
duration. Now writers publish an immutable snapshot per batch (one atomic
reference swap) and readers pin it, so a read never blocks on a write.

The gate runs the identical workload twice against one service:

* **locked baseline** — readers reproduce the pre-snapshot read path:
  resolve the entry, take its per-entry lock
  (:meth:`~repro.service.cache.IndexCache.lock_for`, the same lock the
  writer's ``apply`` holds for the whole burst), re-validate, and read the
  live index under the lock. (The old path could also miss and pay a full
  rebuild mid-burst; the reconstruction here is *charitable* to the
  baseline — it only charges the lock stall, never a rebuild.)
* **snapshot path** — readers read through ``service.cursor(...)``:
  wait-free pinned-snapshot reads, the production path.

Both runs measure, over the writer's full burst window: aggregate reader
throughput (reads/s) and per-read p99 latency. The gate asserts the
snapshot path beats the locked baseline **≥ 5×** on both (the ISSUE 5
acceptance bar), sanity-checks that reads stayed correct (right count,
single consistent version per read) and that no production read took a
lock (``stats().locked_reads == 0`` for the snapshot run), and writes the
measured numbers to ``BENCH_concurrent_reads.json``.

Usage
-----
``PYTHONPATH=src python benchmarks/bench_concurrent_reads.py``          (full, asserts 5×)
``PYTHONPATH=src python benchmarks/bench_concurrent_reads.py --smoke``  (small, CI-fast,
asserts correctness and a modest ≥ 1.5× bar)

Not a pytest file on purpose: like the other gates, CI runs it directly
(in ``--smoke`` mode).
"""

from __future__ import annotations

import argparse
import random
import statistics
import sys
import threading
import time

from repro import Database, Delta, QueryService, Relation, parse_ucq
from repro.service.cache import canonical_query_key

QUERY_TEXT = (
    "Q(a, b, c) :- R(a, b), S(b, c) ; Q(a, b, c) :- R(a, b), T(b, c)"
)


def build_database(left_rows: int, keys: int, partners: int) -> Database:
    """Two chain members sharing R; S and T overlap on half their rows (the
    bench_batch_update shape, so the S∩T index is genuinely maintained)."""
    half = partners // 2
    return Database([
        Relation("R", ("a", "b"), [(i, i % keys) for i in range(left_rows)]),
        Relation(
            "S", ("b", "c"),
            [(j, k) for j in range(keys) for k in range(partners)],
        ),
        Relation(
            "T", ("b", "c"),
            [(j, k + half) for j in range(keys) for k in range(partners)],
        ),
    ])


def burst_stream(n_bursts: int, burst_size: int, left_rows: int, keys: int, seed: int):
    """Paired insert/delete bursts over R: every burst is all-effective,
    and the database returns to its initial contents after each pair, so
    both timed runs see identical work."""
    rng = random.Random(seed)
    bursts = []
    fresh = left_rows
    for __ in range(n_bursts):
        rows = [(fresh + i, rng.randrange(keys)) for i in range(burst_size)]
        fresh += burst_size
        bursts.append([("insert", "R", row) for row in rows])
        bursts.append([("delete", "R", row) for row in rows])
    return bursts


class ReaderStats:
    __slots__ = ("latencies", "reads")

    def __init__(self):
        self.latencies = []
        self.reads = 0


def locked_read(service, query, query_key, consume):
    """One read the way the pre-snapshot service did it: resolve the entry
    at the current version, take its write lock, re-validate, read the
    live index under the lock (retrying across a concurrent re-key)."""
    database = service.database
    while True:
        key = (database, database.version, query_key)
        entry = service._cache.peek(key)
        if entry is None:
            # Mid-re-key (or pre-warm): the old path would rebuild here;
            # charging the baseline nothing, just retry the probe.
            key = (database, database.version - 1, query_key)
            entry = service._cache.peek(key)
            if entry is None:
                continue
        lock = service._cache.lock_for(key)
        with lock:
            if service._cache.peek(key) is entry:
                return consume(entry)
        # Lost the race with a concurrent re-key: resolve again.


def run_storm(service, query, n_readers, page_size, sample_size, bursts, locked):
    """One full storm: a writer replays every burst while readers hammer
    pagination + sampling; returns (reader stats, writer seconds)."""
    query_key = canonical_query_key(service.resolve(query))
    start = threading.Barrier(n_readers + 1)
    done = threading.Event()
    stats = [ReaderStats() for __ in range(n_readers)]
    errors = []
    expected_count = service.count(query)

    def reader(position):
        rng = random.Random(1000 + position)
        mine = stats[position]
        try:
            start.wait()
            while not done.is_set():
                page = rng.randrange(8)
                began = time.perf_counter()
                if locked:
                    answers = locked_read(
                        service, query, query_key,
                        lambda index: index.batch(
                            range(page * page_size,
                                  min((page + 1) * page_size, index.count))
                        ) + index.sample_many(sample_size, rng),
                    )
                else:
                    cursor = service.cursor(query)
                    view = cursor.pinned
                    answers = view.batch(
                        range(page * page_size,
                              min((page + 1) * page_size, view.count))
                    ) + view.sample_many(sample_size, rng)
                mine.latencies.append(time.perf_counter() - began)
                mine.reads += 1
                if len(answers) != page_size + sample_size:
                    raise AssertionError(
                        f"short read: {len(answers)} answers "
                        f"(count drifted mid-read?)"
                    )
        except Exception as exc:  # pragma: no cover - the failure mode
            errors.append(exc)
            done.set()

    threads = [
        threading.Thread(target=reader, args=(position,))
        for position in range(n_readers)
    ]
    for thread in threads:
        thread.start()
    start.wait()
    began = time.perf_counter()
    for burst in bursts:
        service.apply(Delta(burst, database=service.database))
    writer_seconds = time.perf_counter() - began
    done.set()
    for thread in threads:
        thread.join(timeout=120)
    if errors:
        raise errors[0]
    if service.count(query) != expected_count:
        raise AssertionError("paired bursts must restore the initial count")
    return stats, writer_seconds


def summarize(stats, window):
    latencies = sorted(lat for s in stats for lat in s.latencies)
    reads = sum(s.reads for s in stats)
    if not latencies:
        raise AssertionError("readers never completed a read in the window")
    p99 = latencies[min(len(latencies) - 1, int(0.99 * len(latencies)))]
    return {
        "reads": reads,
        "throughput_per_second": reads / window,
        "p50_seconds": statistics.median(latencies),
        "p99_seconds": p99,
        "max_seconds": latencies[-1],
    }


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--smoke", action="store_true",
                        help="small instance, modest bar (CI sanity run)")
    parser.add_argument("--readers", type=int, default=4)
    parser.add_argument("--seed", type=int, default=20200614)
    parser.add_argument("--json", default="BENCH_concurrent_reads.json",
                        help="where to write the measured numbers")
    args = parser.parse_args(argv)

    if args.smoke:
        # Bursts must dwarf the GIL scheduling quantum, or the locked
        # baseline's stall (== burst duration) hides inside timing noise.
        left_rows, keys, partners = 1_000, 50, 8
        n_bursts, burst_size = 4, 2_000
        page_size, sample_size = 10, 5
        required_speedup = 1.5
    else:
        left_rows, keys, partners = 20_000, 400, 100
        n_bursts, burst_size = 6, 4_000
        page_size, sample_size = 10, 5
        required_speedup = 5.0

    # Both runs are CPU-bound Python threads; the default 5ms GIL switch
    # interval adds tens of milliseconds of pure scheduling noise to every
    # latency tail, drowning the signal this gate measures (lock stalls).
    # A 1ms quantum applies to baseline and snapshot runs alike.
    sys.setswitchinterval(0.001)

    query = parse_ucq(QUERY_TEXT)
    database = build_database(left_rows, keys, partners)
    service = QueryService(database, dynamic=True)
    service.count(query)  # warm the dynamic union entry
    bursts = burst_stream(n_bursts, burst_size, left_rows, keys, args.seed)
    print(f"|D| = {database.size()} facts, |Q(D)| = {service.count(query)}, "
          f"{len(bursts)} bursts x {burst_size} ops, "
          f"{args.readers} readers (page {page_size} + sample {sample_size})")

    # Locked baseline first, then the snapshot path, on the same warmed
    # service (paired bursts restore the contents between runs).
    locked_stats, locked_window = run_storm(
        service, query, args.readers, page_size, sample_size, bursts,
        locked=True,
    )
    snapshot_stats, snapshot_window = run_storm(
        service, query, args.readers, page_size, sample_size, bursts,
        locked=False,
    )

    locked = summarize(locked_stats, locked_window)
    snapshot = summarize(snapshot_stats, snapshot_window)
    service_stats = service.stats()
    if service_stats.locked_reads != 0:
        print("FAIL: a production (snapshot-path) read took the entry lock")
        return 1
    if service_stats.snapshot_publishes < 1:
        print("FAIL: the dynamic entry published no snapshots")
        return 1

    throughput_speedup = (
        snapshot["throughput_per_second"] / locked["throughput_per_second"]
    )
    p99_speedup = locked["p99_seconds"] / snapshot["p99_seconds"]
    for label, numbers, window in (
        ("locked  ", locked, locked_window),
        ("snapshot", snapshot, snapshot_window),
    ):
        print(f"{label}: {numbers['reads']} reads in {window:.2f}s "
              f"({numbers['throughput_per_second']:.0f}/s), "
              f"p50 {numbers['p50_seconds'] * 1e3:.2f}ms, "
              f"p99 {numbers['p99_seconds'] * 1e3:.2f}ms, "
              f"max {numbers['max_seconds'] * 1e3:.2f}ms")
    print(f"reader throughput speedup {throughput_speedup:.1f}x, "
          f"p99 latency improvement {p99_speedup:.1f}x")

    from conftest import emit_bench

    emit_bench(
        "bench_concurrent_reads",
        min(throughput_speedup, p99_speedup),
        required_speedup,
        args.json,
        params={
            "query": QUERY_TEXT,
            "facts": database.size(),
            "answers": service.count(query),
            "readers": args.readers,
            "bursts": len(bursts),
            "burst_size": burst_size,
            "locked": {k: round(v, 6) for k, v in locked.items()},
            "snapshot": {k: round(v, 6) for k, v in snapshot.items()},
            "locked_window_seconds": round(locked_window, 6),
            "snapshot_window_seconds": round(snapshot_window, 6),
            "throughput_speedup": round(throughput_speedup, 2),
            "p99_speedup": round(p99_speedup, 2),
            "snapshot_publishes": service_stats.snapshot_publishes,
        },
        smoke=args.smoke,
    )

    failed = []
    if throughput_speedup < required_speedup:
        failed.append(f"throughput speedup {throughput_speedup:.1f}x "
                      f"below required {required_speedup:.1f}x")
    if p99_speedup < required_speedup:
        failed.append(f"p99 improvement {p99_speedup:.1f}x "
                      f"below required {required_speedup:.1f}x")
    if failed:
        for reason in failed:
            print(f"FAIL: {reason}")
        return 1
    print(f"OK: snapshot readers beat the locked baseline "
          f"{throughput_speedup:.1f}x on throughput and {p99_speedup:.1f}x "
          f"on p99 latency (required {required_speedup:.1f}x)")
    return 0


if __name__ == "__main__":
    sys.exit(main())
