"""Figure 7 (App. B.3) — delay mean/SD/outlier% tables at 50% and 100%."""

from repro.experiments.figures import figure7_tables


def test_figure7_tables(benchmark, config, results_dir):
    result = benchmark.pedantic(figure7_tables, args=(config,), rounds=1, iterations=1)
    text = result.render()
    (results_dir / "figure7_tables.txt").write_text(text)
    print(text)
