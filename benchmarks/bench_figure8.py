"""Figure 8 (App. B.2.2) — Q3 with Sample(OE) added."""

from repro.experiments.figures import figure8


def test_figure8(benchmark, config, results_dir):
    result = benchmark.pedantic(figure8, args=(config,), rounds=1, iterations=1)
    text = result.render()
    (results_dir / "figure8.txt").write_text(text)
    print(text)
