"""Uniformity audit as a measured experiment.

The paper proves its distributional guarantees; this bench *measures* them
on TPC-H Q0, writing chi-square p-values for REnum(CQ) first emissions and
Sample(EW) draw frequencies to ``results/uniformity.txt``.
"""

import random

from repro import CQIndex
from repro.experiments.figures import benchmark_database
from repro.experiments.report import render_table
from repro.experiments.uniformity import first_emission_audit, frequency_audit
from repro.sampling import ExactWeightSampler
from repro.tpch.queries import make_q0


def _audit(config):
    db = benchmark_database(config)
    query = make_q0()
    index = CQIndex(query, db)
    universe = list(index)
    rng = random.Random(config.seed)

    renum = first_emission_audit(
        lambda: index.random_order(rng), universe, trials=4 * len(universe)
    )
    sampler = ExactWeightSampler(query, db, rng=rng)
    sample = frequency_audit(sampler.sample, universe, trials=8 * len(universe))
    rows = [
        ["REnum(CQ) first emission", f"{renum.statistic:.1f}",
         renum.degrees_of_freedom, f"{renum.p_value:.4f}",
         renum.consistent_with_uniform()],
        ["Sample(EW) draw frequency", f"{sample.statistic:.1f}",
         sample.degrees_of_freedom, f"{sample.p_value:.4f}",
         sample.consistent_with_uniform()],
    ]
    return render_table(
        ["audit", "chi2", "dof", "p-value", "uniform?"], rows
    )


def test_uniformity_audit(benchmark, config, results_dir):
    text = benchmark.pedantic(_audit, args=(config,), rounds=1, iterations=1)
    (results_dir / "uniformity.txt").write_text(
        "=== Uniformity audit (Q0, chi-square) ===\n" + text + "\n"
    )
    print(text)
