"""Acceptance gate: batched ``apply`` vs. the single-fact write loop.

The question behind the ``Delta`` API: a hot dynamic mc-UCQ is cached and
a write **burst** arrives — ~10⁴ mixed inserts and deletes over a ~10⁵
fact database. Two identical ``dynamic=True`` services absorb the same
burst:

* the **single-fact loop** calls ``service.insert`` / ``service.delete``
  once per fact — each call pays a copy-on-write relation rebuild, a full
  cache walk with one lock/re-key per entry, a per-fact propagation pass
  through the member forests, and one ``UnionRandomAccess.refresh()``;
* the **batched path** calls ``service.apply(delta)`` once — one database
  version bump (one copy-on-write per touched relation), one cache walk,
  one lock/re-key, bucket-grouped bulk inserts, one *deduplicated*
  propagation pass over the dirty bucket paths, and exactly one union
  refresh.

The gate asserts the batched path is ≥ 5× faster (the ISSUE 4 acceptance
bar), verifies the two services agree on the final count and — order
maintenance being the point — position-for-position on a systematic
sample of the enumeration, and writes the measured numbers to
``BENCH_batch_update.json``.

Usage
-----
``PYTHONPATH=src python benchmarks/bench_batch_update.py``          (full, asserts 5×)
``PYTHONPATH=src python benchmarks/bench_batch_update.py --smoke``  (small, CI-fast,
asserts equivalence and a modest ≥ 2× bar)

Not a pytest file on purpose: like ``bench_batch.py`` and
``bench_union_dynamic.py``, this is an acceptance gate that CI runs
directly (in ``--smoke`` mode).
"""

from __future__ import annotations

import argparse
import gc
import random
import sys
import time

from repro import Database, Delta, QueryService, Relation, parse_ucq

QUERY_TEXT = (
    "Q(a, b, c) :- R(a, b), S(b, c) ; Q(a, b, c) :- R(a, b), T(b, c)"
)


def build_database(left_rows: int, keys: int, partners: int) -> Database:
    """Two chain members sharing R; S and T overlap on half their rows, so
    the S∩T intersection index is nonempty and genuinely maintained."""
    half = partners // 2
    return Database([
        Relation("R", ("a", "b"), [(i, i % keys) for i in range(left_rows)]),
        Relation(
            "S",
            ("b", "c"),
            [(j, k) for j in range(keys) for k in range(partners)],
        ),
        Relation(
            "T",
            ("b", "c"),
            [(j, k + half) for j in range(keys) for k in range(partners)],
        ),
    ])


def update_stream(n_updates: int, left_rows: int, keys: int, partners: int, seed: int):
    """A mixed burst touching every relation and every maintenance path:
    fresh-R inserts (both members gain answers), deletes of some of those
    same fresh rows (insert-then-delete pairs the Delta normalization
    collapses), fresh member-only S rows, and deletes of original T rows
    that S also holds (S∩T intersection exits)."""
    rng = random.Random(seed)
    half = partners // 2
    # Distinct original T rows to delete (c < partners hits S∩T — an
    # intersection exit; c ≥ partners is a member-only delete).
    t_rows = [(j, k + half) for j in range(keys) for k in range(partners)]
    rng.shuffle(t_rows)
    stream = []
    fresh = left_rows
    extra_c = 10 * partners  # values no initial S/T row uses
    for step in range(n_updates):
        phase = step % 8
        if phase in (0, 2, 4):
            stream.append(("insert", "R", (fresh, rng.randrange(keys))))
            fresh += 1
        elif phase == 6:
            # Delete the fresh row phase 4 just inserted: a genuine
            # insert+delete for the loop, a pair the Delta normalization
            # collapses to a no-op delete for the batch.
            stream.append(("delete", "R", stream[-2][2]))
        elif phase in (1, 5):
            # A fresh S row whose T partner never arrives — the
            # member-only (non-intersection) transition.
            stream.append(("insert", "S", (rng.randrange(keys), extra_c + step)))
        else:
            stream.append(("delete", "T", t_rows.pop()))
    return stream


def timed(thunk):
    """Time one call with the cyclic GC paused (see bench_batch.timed)."""
    gc.collect()
    enabled = gc.isenabled()
    gc.disable()
    try:
        started = time.perf_counter()
        result = thunk()
        elapsed = time.perf_counter() - started
    finally:
        if enabled:
            gc.enable()
    return elapsed, result


def single_fact_loop(service: QueryService, updates) -> None:
    for operation, relation, row in updates:
        if operation == "insert":
            service.insert(relation, row)
        else:
            service.delete(relation, row)


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--smoke", action="store_true",
                        help="small instance, modest bar (CI sanity run)")
    parser.add_argument("--updates", type=int, default=None,
                        help="size of the write burst (default 10000, smoke 200)")
    parser.add_argument("--seed", type=int, default=20200614)
    parser.add_argument("--json", default="BENCH_batch_update.json",
                        help="where to write the measured numbers")
    args = parser.parse_args(argv)

    if args.smoke:
        left_rows, keys, partners = 1_000, 50, 8
        required_speedup = 2.0
    else:
        left_rows, keys, partners = 20_000, 400, 100
        required_speedup = 5.0
    n_updates = args.updates if args.updates is not None else (200 if args.smoke else 10_000)

    query = parse_ucq(QUERY_TEXT)
    db_loop = build_database(left_rows, keys, partners)
    db_batch = build_database(left_rows, keys, partners)
    updates = update_stream(n_updates, left_rows, keys, partners, args.seed)

    loop_service = QueryService(db_loop, dynamic=True)
    batch_service = QueryService(db_batch, dynamic=True)
    # Warm both caches: the gate measures write absorption on a hot union,
    # not the initial build.
    warm_loop, __ = timed(lambda: loop_service.count(query))
    warm_batch, __ = timed(lambda: batch_service.count(query))
    n_facts = db_loop.size()
    print(f"|D| = {n_facts} facts, |Q(D)| = {loop_service.count(query)}, "
          f"burst of {len(updates)} updates")
    print(f"warm build     : loop-side {warm_loop:.3f}s  "
          f"batch-side {warm_batch:.3f}s")

    delta = Delta(updates, database=db_batch)
    loop_seconds, __ = timed(lambda: single_fact_loop(loop_service, updates))
    batch_seconds, __ = timed(lambda: batch_service.apply(delta))

    loop_stats = loop_service.stats()
    batch_stats = batch_service.stats()
    if batch_stats.batched_updates != 1:
        print(f"FAIL: expected 1 batched update, service recorded "
              f"{batch_stats.batched_updates}")
        return 1
    if batch_stats.in_place_updates != 0 or loop_stats.batched_updates != 0:
        print("FAIL: services crossed paths (loop must be single-fact, "
              "batch must be one delta)")
        return 1
    if loop_stats.invalidations or batch_stats.invalidations:
        print("FAIL: a dynamic entry was invalidated instead of updated")
        return 1

    n_loop = loop_service.count(query)
    n_batch = batch_service.count(query)
    if n_loop != n_batch:
        print(f"FAIL: final counts disagree (loop {n_loop}, batch {n_batch})")
        return 1
    # Order-level agreement on a systematic sample (full enumeration of
    # millions of union answers would dominate the gate's runtime).
    stride = max(1, n_loop // 2_000)
    probe = list(range(0, n_loop, stride)) + [n_loop - 1]
    if loop_service.batch(query, probe) != batch_service.batch(query, probe):
        print("FAIL: enumerations disagree position-for-position "
              "(order maintenance broken, not just the answer set)")
        return 1

    speedup = loop_seconds / batch_seconds
    print(f"write burst    : single-fact loop {loop_seconds:.3f}s  "
          f"batched apply {batch_seconds:.3f}s  speedup {speedup:.1f}x")

    from conftest import emit_bench

    emit_bench(
        "bench_batch_update", speedup, required_speedup, args.json,
        params={
            "query": QUERY_TEXT,
            "facts": n_facts,
            "answers": n_loop,
            "delta_ops": len(delta),
            "updates": len(updates),
            "warm_build_loop_seconds": round(warm_loop, 6),
            "warm_build_batch_seconds": round(warm_batch, 6),
            "single_fact_seconds": round(loop_seconds, 6),
            "batched_seconds": round(batch_seconds, 6),
            "single_fact_in_place_updates": loop_stats.in_place_updates,
            "batched_update_ops": batch_stats.batched_update_ops,
        },
        smoke=args.smoke,
    )

    if speedup < required_speedup:
        print(f"FAIL: batched apply speedup {speedup:.1f}x "
              f"below required {required_speedup:.1f}x")
        return 1
    print(f"OK: batched apply is {speedup:.1f}x the single-fact loop "
          f"(required {required_speedup:.1f}x)")
    return 0


if __name__ == "__main__":
    sys.exit(main())
