"""Acceptance gate: the columnar flat store vs. the tuple store.

The tentpole question of the columnar data plane: at ~10⁵ facts and
~3×10⁶ answers, how much faster does the flat backend serve the
read-heavy workloads that dominate a warm index — one big unsorted
batch, a pagination sweep, and ``sample_many``? Both backends are built
over the identical database and the gate first verifies they agree
position for position on every workload before timing anything.

The flat wins come from the vectorized batch walk
(:func:`repro.core.flat_store.flat_batch`): one ``searchsorted`` plus
one gather per level for the *whole* offset array, instead of a python
treap/bisect descent per position.

The acceptance bar is a ≥ 5× single-thread speedup (minimum over the
three workloads, each the best of three repeats) on the full instance;
``--smoke`` runs a small instance against a modest 1.5× bar for CI.

Usage
-----
``PYTHONPATH=src python benchmarks/bench_flat_store.py``          (full, asserts 5×)
``PYTHONPATH=src python benchmarks/bench_flat_store.py --smoke``  (small, CI-fast)

Not a pytest file on purpose: like the other gates, CI runs it directly.
"""

from __future__ import annotations

import argparse
import random
import sys

from repro import CQIndex, parse_cq  # noqa: F401  (parse_cq via build_instance)

from bench_batch import build_instance, timed


def measure(make_thunks, repeats):
    """Best-of-``repeats`` seconds for each thunk in one aligned pass."""
    best = [float("inf")] * len(make_thunks)
    outputs = [None] * len(make_thunks)
    for __ in range(repeats):
        for position, thunk in enumerate(make_thunks):
            seconds, result = timed(thunk)
            best[position] = min(best[position], seconds)
            outputs[position] = result
    return best, outputs


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--smoke", action="store_true",
                        help="small instance, modest bar (CI sanity run)")
    parser.add_argument("--seed", type=int, default=20200614)
    parser.add_argument("--json", default="BENCH_flat_store.json",
                        help="where to write the measured numbers")
    args = parser.parse_args(argv)

    try:
        import numpy  # noqa: F401
    except ImportError:
        print("FAIL: the flat store gate needs numpy (pip install repro[fast])")
        return 1

    if args.smoke:
        # ~4·10³ facts, ~4·10⁴ answers.
        query, database = build_instance(
            answers_per_key=20, keys=100, left_rows=2_000)
        required_speedup = 1.5
        batch_size = 20_000
        repeats = 1
    else:
        # ~10⁵ facts, 3·10⁶ answers: left_rows × answers_per_key.
        query, database = build_instance(
            answers_per_key=50, keys=800, left_rows=60_000)
        required_speedup = 5.0
        batch_size = 200_000
        # Best-of-5: the timing floor, not the mean — the shared CI hosts
        # show ±30% contention spikes and both arms deserve their best run.
        repeats = 5

    built_tuple, tuple_index = timed(
        lambda: CQIndex(query, database, store="tuple"))
    built_flat, flat_index = timed(
        lambda: CQIndex(query, database, store="flat"))
    if flat_index.store != "flat":
        print("FAIL: flat build fell back to the tuple store")
        return 1
    n = tuple_index.count
    if flat_index.count != n:
        print("FAIL: backends disagree on the answer count")
        return 1
    print(f"|D| = {database.size()} facts, |Q(D)| = {n}")
    print(f"build          : tuple {built_tuple:.3f}s  flat {built_flat:.3f}s")

    rng = random.Random(args.seed)
    positions = [rng.randrange(n) for __ in range(batch_size)]
    page_size = 1_000
    page_starts = range(0, n, max(page_size, n // 500 // page_size * page_size
                                  or page_size))
    pages = [range(s, min(s + page_size, n)) for s in page_starts]

    workloads = []  # (label, tuple_thunk, flat_thunk)
    workloads.append((
        "random batch",
        lambda: tuple_index.batch(positions),
        lambda: flat_index.batch(positions),
    ))
    workloads.append((
        f"{len(pages)} pages",
        lambda: [tuple_index.batch(page) for page in pages],
        lambda: [flat_index.batch(page) for page in pages],
    ))
    workloads.append((
        "sample_many",
        lambda: tuple_index.sample_many(batch_size, random.Random(args.seed)),
        lambda: flat_index.sample_many(batch_size, random.Random(args.seed)),
    ))

    speedups = {}
    timings = {}
    for label, tuple_thunk, flat_thunk in workloads:
        (tuple_s, flat_s), (want, got) = measure(
            [tuple_thunk, flat_thunk], repeats)
        if got != want:
            print(f"FAIL: backends disagree on the {label} workload")
            return 1
        del want, got
        ratio = tuple_s / flat_s
        key = label.split()[-1] if label.endswith("pages") else label.replace(" ", "_")
        speedups[label] = ratio
        timings[key] = {"tuple_seconds": round(tuple_s, 6),
                        "flat_seconds": round(flat_s, 6),
                        "speedup": round(ratio, 2)}
        print(f"{label:<15}: tuple {tuple_s:.3f}s  flat {flat_s:.3f}s  "
              f"speedup {ratio:.1f}x")

    floor = min(speedups.values())

    from conftest import emit_bench

    emit_bench(
        "bench_flat_store", floor, required_speedup, args.json,
        params={
            "query": "Q(x0, x1, x2) :- R1(x0, x1), R2(x1, x2)",
            "facts": database.size(),
            "answers": n,
            "batch_size": batch_size,
            "page_size": page_size,
            "pages": len(pages),
            "build_tuple_seconds": round(built_tuple, 6),
            "build_flat_seconds": round(built_flat, 6),
            "workloads": timings,
        },
        smoke=args.smoke,
    )

    if floor < required_speedup:
        print(f"FAIL: flat-store floor speedup {floor:.1f}x "
              f"below required {required_speedup:.1f}x")
        return 1
    print(f"OK: flat store is ≥ {floor:.1f}x the tuple store on every "
          f"workload (required {required_speedup:.1f}x)")
    return 0


if __name__ == "__main__":
    sys.exit(main())
