"""Acceptance gate: checkpoint-plus-tail restart vs. cold CSV rebuild.

The durability question (ISSUE 6): a serving process dies and restarts.
How long until it serves its **first answer** again? Two restart paths
over the same ~10⁵-fact database, measured to the first ``count``:

* the **cold path** re-parses every relation's CSV text and rebuilds the
  query's index from scratch — O(|D|) parse + O(|D|) preprocessing, the
  paper's whole preprocessing phase paid again on every restart;
* the **recovery path** loads the newest checkpoint (pickled relations
  *and* the pickled serve-state index), replays the write-ahead log's
  durable tail through the service — the carried-forward machinery the
  live write path uses, so a tail that doesn't touch the query's
  relations keeps the seeded index — and serves from the re-seeded cache.

The gate asserts recovery reaches the first served answer ≥ 5× faster
than the cold rebuild, verifies both paths agree on the answer count and
land on the same database version, and writes the measured numbers to
``BENCH_recovery.json``.

Usage
-----
``PYTHONPATH=src python benchmarks/bench_recovery.py``          (full, asserts 5×)
``PYTHONPATH=src python benchmarks/bench_recovery.py --smoke``  (small, CI-fast,
asserts agreement and a modest ≥ 2× bar)

Not a pytest file on purpose: like ``bench_batch.py`` and
``bench_batch_update.py``, this is an acceptance gate that CI runs
directly (in ``--smoke`` mode).
"""

from __future__ import annotations

import argparse
import gc
import pathlib
import shutil
import sys
import tempfile
import time

from repro import Database, Delta, QueryService, Relation
from repro.cli import load_csv_database
from repro.storage import write_relation_csv

QUERY_TEXT = "Q(a, b, c) :- R(a, b), S(b, c)"


def build_database(left_rows: int, keys: int, partners: int) -> Database:
    """R ⋈ S drives the served query; E is the event relation the
    post-checkpoint write tail lands in (disjoint from the query, the
    common restart shape: the hot query's inputs are stable while an
    append-heavy relation takes the writes)."""
    return Database([
        Relation("R", ("a", "b"), [(i, i % keys) for i in range(left_rows)]),
        Relation(
            "S",
            ("b", "c"),
            [(j, k) for j in range(keys) for k in range(partners)],
        ),
        Relation("E", ("id", "payload"), [(0, "boot")]),
    ])


def timed(thunk):
    """Time one call with the cyclic GC paused (see bench_batch.timed)."""
    gc.collect()
    enabled = gc.isenabled()
    gc.disable()
    try:
        started = time.perf_counter()
        result = thunk()
        elapsed = time.perf_counter() - started
    finally:
        if enabled:
            gc.enable()
    return elapsed, result


def cold_restart(csv_dir: pathlib.Path, query: str):
    """Parse the CSVs, build the service, serve the first answer."""
    service = QueryService(load_csv_database(str(csv_dir)))
    return service.count(query), service


def recovered_restart(store_dir: pathlib.Path, query: str):
    """Checkpoint + WAL tail + seeded serve-state, then the first answer."""
    service = QueryService.recover(store_dir)
    return service.count(query), service


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--smoke", action="store_true",
                        help="small instance, modest bar (CI sanity run)")
    parser.add_argument("--tail-batches", type=int, default=20,
                        help="write batches applied after the checkpoint")
    parser.add_argument("--json", default="BENCH_recovery.json",
                        help="where to write the measured numbers")
    args = parser.parse_args(argv)

    if args.smoke:
        left_rows, keys, partners = 5_000, 200, 25
        required_speedup = 2.0
    else:
        left_rows, keys, partners = 50_000, 1_000, 50
        required_speedup = 5.0

    workdir = pathlib.Path(tempfile.mkdtemp(prefix="bench_recovery_"))
    csv_dir = workdir / "csv"
    store_dir = workdir / "store"
    csv_dir.mkdir()
    try:
        # ---- the life of the process before the crash ---------------- #
        database = build_database(left_rows, keys, partners)
        n_facts = database.size()
        for relation in database:
            write_relation_csv(csv_dir, relation)

        service = QueryService(database, storage=store_dir)
        build_seconds, expected = timed(lambda: service.count(QUERY_TEXT))
        service.checkpoint()  # carries the built index as serve-state
        for batch in range(args.tail_batches):
            delta = Delta(database=database)
            for i in range(5):
                delta.insert("E", (1 + batch * 5 + i, f"event-{batch}-{i}"))
            service.apply(delta)
        # Export the tail into the CSVs too, so both restart paths see
        # the same final state (the CSV view is kept in sync, as
        # ``repro apply --wal`` does).
        write_relation_csv(csv_dir, database.relation("E"))
        final_version = database.version
        database.log.close()  # the "crash": nothing further is written

        print(f"|D| = {n_facts} facts (+{args.tail_batches * 5} tail), "
              f"|Q(D)| = {expected}, index build {build_seconds:.3f}s")

        # ---- the two restart paths ----------------------------------- #
        cold_seconds, (cold_count, __) = timed(
            lambda: cold_restart(csv_dir, QUERY_TEXT)
        )
        recovery_seconds, (recovered_count, recovered) = timed(
            lambda: recovered_restart(store_dir, QUERY_TEXT)
        )
        report = recovered.storage.last_report

        if cold_count != expected or recovered_count != expected:
            print(f"FAIL: counts disagree (expected {expected}, "
                  f"cold {cold_count}, recovered {recovered_count})")
            return 1
        if recovered.database.version != final_version:
            print(f"FAIL: recovery landed on version "
                  f"{recovered.database.version}, last durable was "
                  f"{final_version}")
            return 1
        if report.serve_entries_seeded < 1:
            print("FAIL: the checkpoint carried no serve-state "
                  "(recovery rebuilt the index from scratch)")
            return 1
        if report.replayed_batches != args.tail_batches:
            print(f"FAIL: replayed {report.replayed_batches} batches, "
                  f"expected {args.tail_batches}")
            return 1

        speedup = cold_seconds / recovery_seconds
        print(f"restart        : cold CSV rebuild {cold_seconds:.3f}s  "
              f"checkpoint+tail {recovery_seconds:.3f}s  "
              f"speedup {speedup:.1f}x")
        print(f"recovery report: checkpoint v{report.checkpoint_version} "
              f"+ {report.replayed_batches} batches "
              f"({report.replayed_ops} ops), "
              f"{report.serve_entries_seeded} serve entr(y/ies) seeded")

        from conftest import emit_bench

        emit_bench(
            "bench_recovery", speedup, required_speedup, args.json,
            params={
                "query": QUERY_TEXT,
                "facts": n_facts,
                "answers": expected,
                "tail_batches": args.tail_batches,
                "tail_ops": args.tail_batches * 5,
                "index_build_seconds": round(build_seconds, 6),
                "cold_restart_seconds": round(cold_seconds, 6),
                "recovery_restart_seconds": round(recovery_seconds, 6),
                "checkpoint_version": report.checkpoint_version,
                "replayed_batches": report.replayed_batches,
                "replayed_ops": report.replayed_ops,
                "serve_entries_seeded": report.serve_entries_seeded,
                "final_version": final_version,
            },
            smoke=args.smoke,
        )

        if speedup < required_speedup:
            print(f"FAIL: recovery speedup {speedup:.1f}x below required "
                  f"{required_speedup:.1f}x")
            return 1
        print(f"OK: recovery reaches the first served answer {speedup:.1f}x "
              f"faster than the cold rebuild (required "
              f"{required_speedup:.1f}x)")
        return 0
    finally:
        shutil.rmtree(workdir, ignore_errors=True)


if __name__ == "__main__":
    sys.exit(main())
