"""Acceptance gate: columnar (mmap) vs. pickle restart, vs. cold rebuild.

The durability question (ISSUE 6): a serving process dies and restarts —
how long until it serves its **first answer** again? ISSUE 8 sharpens
it: the restart cost of a *flat-heavy* cache should be O(metadata), not
O(answers). Three restart paths over the same ~10⁵-fact database
(~3×10⁶ answers for the hot query, plus two smaller cached queries),
each measured to the first ``count``:

* the **cold path** re-parses every relation's CSV text and rebuilds the
  hot query's index from scratch — O(|D|) parse + O(|D|) preprocessing,
  the paper's whole preprocessing phase paid again on every restart;
* the **pickle path** (``serve_format="pickle"``) recovers from a
  checkpoint whose serve-state is pickled — every interned value, id
  array, and prefix-sum slab is rebuilt as python objects before the
  first answer;
* the **blob path** (``serve_format="blob"``, the default) recovers from
  ``serve-flat/`` columnar blobs: int slabs arrive as read-only
  ``np.load(..., mmap_mode="r")`` views and value tables stay deferred,
  so seeding constructs **zero** per-row python objects (asserted here
  via ``flat_store.TABLE_MATERIALIZATIONS``) until a read gathers.

The gate asserts the blob restart beats the pickle restart ≥ 3× and the
cold rebuild ≥ 5×, verifies all paths agree on counts, versions, and a
sampled page of answers, and writes the per-backend split (a
tuple-backend pickle lane included, for reference) to
``BENCH_recovery.json``.

Usage
-----
``PYTHONPATH=src python benchmarks/bench_recovery.py``          (full, asserts 3×/5×)
``PYTHONPATH=src python benchmarks/bench_recovery.py --smoke``  (small, CI-fast,
asserts agreement and modest bars)

Not a pytest file on purpose: like ``bench_batch.py`` and
``bench_batch_update.py``, this is an acceptance gate that CI runs
directly (in ``--smoke`` mode).
"""

from __future__ import annotations

import argparse
import gc
import pathlib
import shutil
import sys
import tempfile
import time

from repro import Database, Delta, QueryService, Relation
from repro.cli import load_csv_database
from repro.core import flat_store
from repro.storage import write_relation_csv

QUERY_TEXT = "Q(a, b, c) :- R(a, b), S(b, c)"
#: The two smaller cached queries that make the serve-state flat-heavy.
SIDE_QUERIES = ("QS(b, c) :- S(b, c)", "QR(a, b) :- R(a, b)")
PAGE_AT = 1234
PAGE_SIZE = 50


def build_database(left_rows: int, keys: int, partners: int) -> Database:
    """R ⋈ S drives the served query (string-heavy S values, the shape
    where object reconstruction dominates a pickle restart); E is the
    event relation the post-checkpoint write tail lands in (disjoint
    from the queries — the common restart shape: the hot query's inputs
    are stable while an append-heavy relation takes the writes)."""
    return Database([
        Relation("R", ("a", "b"), [(i, i % keys) for i in range(left_rows)]),
        Relation(
            "S",
            ("b", "c"),
            [(j, f"partner-{j}-{k}")
             for j in range(keys) for k in range(partners)],
        ),
        Relation("E", ("id", "payload"), [(0, "boot")]),
    ])


def timed(thunk):
    """Time one call with the cyclic GC paused (see bench_batch.timed)."""
    gc.collect()
    enabled = gc.isenabled()
    gc.disable()
    try:
        started = time.perf_counter()
        result = thunk()
        elapsed = time.perf_counter() - started
    finally:
        if enabled:
            gc.enable()
    return elapsed, result


def cold_restart(csv_dir: pathlib.Path, query: str):
    """Parse the CSVs, build the service, serve the first answer."""
    service = QueryService(load_csv_database(str(csv_dir)), store="flat")
    return service.count(query), service


def recovered_restart(store_dir: pathlib.Path, query: str, backend: str):
    """Checkpoint + WAL tail + seeded serve-state, then the first answer."""
    service = QueryService.recover(store_dir, store=backend)
    return service.count(query), service


def prepare_store(base: Database, store_dir: pathlib.Path, backend: str,
                  serve_format: str, tail_batches: int) -> int:
    """One pre-crash service lifetime: build the cache, checkpoint it in
    ``serve_format``, apply the write tail, crash. Returns the final
    durable version."""
    database = base.copy()
    service = QueryService(database, storage=store_dir, store=backend)
    service.count(QUERY_TEXT)
    for query in SIDE_QUERIES:
        service.count(query)
    service.checkpoint(serve_format=serve_format)
    for batch in range(tail_batches):
        delta = Delta(database=database)
        for i in range(5):
            delta.insert("E", (1 + batch * 5 + i, f"event-{batch}-{i}"))
        service.apply(delta)
    final_version = database.version
    database.log.close()  # the "crash": nothing further is written
    return final_version


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--smoke", action="store_true",
                        help="small instance, modest bars (CI sanity run)")
    parser.add_argument("--tail-batches", type=int, default=20,
                        help="write batches applied after the checkpoint")
    parser.add_argument("--json", default="BENCH_recovery.json",
                        help="where to write the measured numbers")
    args = parser.parse_args(argv)

    if args.smoke:
        # Big enough that the pickle lane's object rebuild dominates its
        # fixed costs (the blob-vs-pickle crossover sits near 10⁴ facts:
        # below it, one serve.pkl read beats a dozen npy opens).
        left_rows, keys, partners = 25_000, 500, 40
        required_blob_speedup = 1.3
        required_cold_speedup = 2.0
        # Restarts are tens of ms at this size, so one scheduler stall
        # swamps the ratio; noise is one-sided, so best-of-N is the
        # honest estimator of each lane's floor.
        repeats = 3
    else:
        left_rows, keys, partners = 60_000, 1_000, 50
        required_blob_speedup = 3.0
        required_cold_speedup = 5.0
        repeats = 1

    workdir = pathlib.Path(tempfile.mkdtemp(prefix="bench_recovery_"))
    csv_dir = workdir / "csv"
    csv_dir.mkdir()
    lanes = [
        # (name, backend, serve_format) — flat-blob last, so its store
        # directory is written with the page cache warm like the others.
        ("tuple-pickle", "tuple", "pickle"),
        ("flat-pickle", "flat", "pickle"),
        ("flat-blob", "flat", "blob"),
    ]
    try:
        # ---- the life of each process before its crash --------------- #
        base = build_database(left_rows, keys, partners)
        n_facts = base.size()
        for relation in base:
            write_relation_csv(csv_dir, relation)
        probe = QueryService(base.copy(), store="flat")
        expected = probe.count(QUERY_TEXT)
        expected_page = probe.page(QUERY_TEXT, PAGE_AT, page_size=PAGE_SIZE)
        del probe

        final_versions = {}
        for name, backend, serve_format in lanes:
            final_versions[name] = prepare_store(
                base, workdir / name, backend, serve_format,
                args.tail_batches,
            )
        tail_relation = base.copy()
        for batch in range(args.tail_batches):
            for i in range(5):
                tail_relation.insert("E", (1 + batch * 5 + i,
                                           f"event-{batch}-{i}"))
        write_relation_csv(csv_dir, tail_relation.relation("E"))

        print(f"|D| = {n_facts} facts (+{args.tail_batches * 5} tail), "
              f"|Q(D)| = {expected}, serve entries = {1 + len(SIDE_QUERIES)}")

        # ---- the restart paths --------------------------------------- #
        cold_seconds = None
        for __ in range(repeats):
            seconds, (cold_count, __service) = timed(
                lambda: cold_restart(csv_dir, QUERY_TEXT)
            )
            cold_seconds = seconds if cold_seconds is None \
                else min(cold_seconds, seconds)
            if cold_count != expected:
                print(f"FAIL: cold count {cold_count} != expected {expected}")
                return 1

        results = {}
        for name, backend, __ in lanes:
            store_dir = workdir / name
            best = None
            for attempt in range(repeats):
                before = flat_store.TABLE_MATERIALIZATIONS
                seconds, (count, service) = timed(
                    lambda: recovered_restart(store_dir, QUERY_TEXT, backend)
                )
                materialized = flat_store.TABLE_MATERIALIZATIONS - before
                best = seconds if best is None else min(best, seconds)
                if attempt < repeats - 1:
                    service.database.log.close()  # release for the next try
            seconds = best
            report = service.storage.last_report
            if count != expected:
                print(f"FAIL[{name}]: count {count} != expected {expected}")
                return 1
            if service.database.version != final_versions[name]:
                print(f"FAIL[{name}]: landed on version "
                      f"{service.database.version}, last durable was "
                      f"{final_versions[name]}")
                return 1
            if report.serve_entries_seeded != 1 + len(SIDE_QUERIES):
                print(f"FAIL[{name}]: {report.serve_entries_seeded} serve "
                      f"entries seeded, expected {1 + len(SIDE_QUERIES)}")
                return 1
            if report.replayed_batches != args.tail_batches:
                print(f"FAIL[{name}]: replayed {report.replayed_batches} "
                      f"batches, expected {args.tail_batches}")
                return 1
            if name == "flat-blob" and materialized != 0:
                print(f"FAIL[{name}]: restart-to-first-count materialized "
                      f"{materialized} value tables (must be 0 — recovery "
                      f"is supposed to be mmap-and-go)")
                return 1
            page = service.page(QUERY_TEXT, PAGE_AT, page_size=PAGE_SIZE)
            if page != expected_page:
                print(f"FAIL[{name}]: recovered page disagrees with the "
                      f"fresh build")
                return 1
            manifest = service.storage.last_manifest or {}
            serve_bytes = sum(
                entry["bytes"] for entry in manifest.get("entries", ())
            )
            results[name] = {
                "restart_seconds": round(seconds, 6),
                "serve_state_bytes": serve_bytes,
                "value_tables_materialized_before_first_count": materialized,
            }
            print(f"restart[{name:12s}]: {seconds:.3f}s "
                  f"(serve-state {serve_bytes / 1e6:.1f} MB, "
                  f"{materialized} tables materialized before first count)")

        blob_seconds = results["flat-blob"]["restart_seconds"]
        pickle_seconds = results["flat-pickle"]["restart_seconds"]
        blob_speedup = pickle_seconds / blob_seconds
        cold_speedup = cold_seconds / blob_seconds
        print(f"cold CSV rebuild: {cold_seconds:.3f}s")
        print(f"speedups        : blob vs pickle {blob_speedup:.1f}x "
              f"(required {required_blob_speedup:.1f}x), blob vs cold "
              f"{cold_speedup:.1f}x (required {required_cold_speedup:.1f}x)")

        from conftest import emit_bench

        emit_bench(
            "bench_recovery", blob_speedup, required_blob_speedup, args.json,
            params={
                "query": QUERY_TEXT,
                "side_queries": list(SIDE_QUERIES),
                "facts": n_facts,
                "answers": expected,
                "tail_batches": args.tail_batches,
                "tail_ops": args.tail_batches * 5,
                "cold_restart_seconds": round(cold_seconds, 6),
                "backends": results,
                "blob_vs_pickle_speedup": round(blob_speedup, 3),
                "blob_vs_cold_speedup": round(cold_speedup, 3),
                "required_cold_speedup": required_cold_speedup,
            },
            smoke=args.smoke,
        )

        if blob_speedup < required_blob_speedup:
            print(f"FAIL: blob restart only {blob_speedup:.1f}x over the "
                  f"pickle path (required {required_blob_speedup:.1f}x)")
            return 1
        if cold_speedup < required_cold_speedup:
            print(f"FAIL: blob restart only {cold_speedup:.1f}x over the "
                  f"cold rebuild (required {required_cold_speedup:.1f}x)")
            return 1
        print(f"OK: columnar recovery reaches the first served answer "
              f"{blob_speedup:.1f}x faster than the pickle path and "
              f"{cold_speedup:.1f}x faster than the cold rebuild")
        return 0
    finally:
        shutil.rmtree(workdir, ignore_errors=True)


if __name__ == "__main__":
    sys.exit(main())
