"""Figure 4 — UCQ enumeration: (a) full-run totals on the three UCQs,
(b) QS7 ∪ QC7 at varying percentage of produced answers."""

from repro.experiments.figures import figure4a, figure4b


def test_figure4a(benchmark, config, results_dir):
    result = benchmark.pedantic(figure4a, args=(config,), rounds=1, iterations=1)
    text = result.render()
    (results_dir / "figure4a.txt").write_text(text)
    print(text)


def test_figure4b(benchmark, config, results_dir):
    result = benchmark.pedantic(figure4b, args=(config,), rounds=1, iterations=1)
    text = result.render()
    (results_dir / "figure4b.txt").write_text(text)
    print(text)
