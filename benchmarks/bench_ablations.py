"""Ablations of the design choices DESIGN.md calls out.

* full reduction on/off for full queries (Algorithm 2 tolerates dangling
  tuples via zero weights — what does the Yannakakis pass buy/cost?);
* canonical bucket sorting on/off (sorting is what makes mc-UCQ order
  compatibility hold by construction — what does it cost at build time?);
* exact-weight sampling via weighted descent vs uniform-index + access
  (the two EW formulations are equivalent; measure the difference);
* Algorithm 5's non-owner deletion vs naive resampling (deletion is what
  makes the delay amortized-constant; the naive variant rejects every
  duplicate encounter again and again).
"""

import random

import pytest

from repro import CQIndex, Database, Relation
from repro.core.deletable import DeletableAnswerSet
from repro.core.union_enum import UnionRandomEnumerator
from repro.experiments.figures import benchmark_database
from repro.tpch.queries import CQ_QUERIES, UCQ_QUERIES


@pytest.mark.parametrize("reduce", [True, False], ids=["reduced", "unreduced"])
def test_build_full_query_reduction(benchmark, config, reduce):
    db = benchmark_database(config)
    query = CQ_QUERIES["Q3"]()
    index = benchmark(lambda: CQIndex(query, db, reduce=reduce))
    assert index.count > 0


@pytest.mark.parametrize("sort_buckets", [True, False], ids=["sorted", "unsorted"])
def test_build_bucket_sorting(benchmark, config, sort_buckets):
    db = benchmark_database(config)
    query = CQ_QUERIES["Q7"]()
    index = benchmark(lambda: CQIndex(query, db, sort_buckets=sort_buckets))
    assert index.count > 0


def test_union_enum_with_deletion(benchmark, config):
    """Algorithm 5 as published: rejected elements are deleted from
    non-owners, so each answer rejects at most once."""
    db = benchmark_database(config)
    ucq = UCQ_QUERIES["QN2_or_QP2_or_QS2"]()

    def run():
        rng = random.Random(3)
        indexes = [CQIndex(q, db) for q in ucq.queries]
        enum = UnionRandomEnumerator.for_indexes(indexes, rng=rng)
        return sum(1 for _ in enum), enum.rejections

    count, rejections = benchmark(run)
    assert count > 0
    benchmark.extra_info["rejections"] = rejections


def test_union_enum_without_deletion(benchmark, config):
    """The ablated variant: sample-and-reject without deleting duplicates
    from non-owners. Correct output, but rejections are unbounded per
    element — the amortized-constant guarantee is lost."""
    db = benchmark_database(config)
    ucq = UCQ_QUERIES["QN2_or_QP2_or_QS2"]()

    def run():
        rng = random.Random(3)
        sets = [DeletableAnswerSet(CQIndex(q, db), rng=rng) for q in ucq.queries]
        emitted = 0
        rejections = 0
        while True:
            counts = [s.count() for s in sets]
            total = sum(counts)
            if total == 0:
                break
            pick = rng.randrange(total)
            chosen = 0
            while pick >= counts[chosen]:
                pick -= counts[chosen]
                chosen += 1
            element = sets[chosen].sample()
            providers = [j for j, s in enumerate(sets) if s.test(element)]
            owner = providers[0]
            if owner == chosen:
                for j in providers:
                    sets[j].delete(element)  # deletion only on emission
                emitted += 1
            else:
                rejections += 1
        return emitted, rejections

    count, rejections = benchmark(run)
    assert count > 0
    benchmark.extra_info["rejections"] = rejections
