"""Figure 3 — delay box plots when enumerating 50% of the answers."""

from repro.experiments.figures import figure2_3


def test_figure3(benchmark, config, results_dir):
    result = benchmark.pedantic(
        figure2_3, args=(0.5, config), kwargs={"figure_name": "Figure 3"},
        rounds=1, iterations=1,
    )
    text = result.render()
    (results_dir / "figure3.txt").write_text(text)
    print(text)
