"""Microbenchmarks of the core guarantees.

The paper's complexity claims, measured directly:

* preprocessing is linear in |D| (Algorithm 2);
* random access is logarithmic in |D| (Algorithm 3);
* inverted access is constant time (Algorithm 4);
* the lazy shuffle has constant delay (Algorithm 1, Proposition 3.6).

These use a synthetic star join whose result is quadratically larger than
the input, so access cost genuinely exercises the index structure.
"""

import random

import pytest

from repro import CQIndex, Database, LazyShuffle, Relation, parse_cq


def _star_database(n: int, fanout: int = 4) -> Database:
    rows_r = [(i, i % (n // fanout or 1)) for i in range(n)]
    rows_s = [(i % (n // fanout or 1), i) for i in range(n)]
    return Database([
        Relation("R", ("a", "b"), rows_r),
        Relation("S", ("b", "c"), rows_s),
    ])


QUERY = parse_cq("Q(a, b, c) :- R(a, b), S(b, c)")


@pytest.mark.parametrize("n", [1000, 2000, 4000, 8000])
def test_preprocessing_linear(benchmark, n):
    db = _star_database(n)
    index = benchmark(lambda: CQIndex(QUERY, db))
    assert index.count > 0
    # Record the per-tuple cost so linearity is visible across params.
    benchmark.extra_info["tuples"] = 2 * n
    benchmark.extra_info["answers"] = index.count


@pytest.mark.parametrize("n", [1000, 4000, 16000])
def test_random_access_logarithmic(benchmark, n):
    db = _star_database(n)
    index = CQIndex(QUERY, db)
    rng = random.Random(0)
    positions = [rng.randrange(index.count) for _ in range(512)]

    def access_batch():
        for position in positions:
            index.access(position)

    benchmark(access_batch)
    benchmark.extra_info["answers"] = index.count


@pytest.mark.parametrize("n", [1000, 4000, 16000])
def test_inverted_access_constant(benchmark, n):
    db = _star_database(n)
    index = CQIndex(QUERY, db)
    index.ensure_inverted_support()
    rng = random.Random(0)
    answers = [index.access(rng.randrange(index.count)) for _ in range(512)]

    def inverted_batch():
        for answer in answers:
            index.inverted_access(answer)

    benchmark(inverted_batch)


@pytest.mark.parametrize("n", [10_000, 100_000, 1_000_000])
def test_shuffle_constant_delay(benchmark, n):
    """Emitting 10k permutation elements costs the same at any n."""

    def emit_prefix():
        shuffle = LazyShuffle(n, random.Random(1))
        for __ in range(10_000):
            next(shuffle)

    benchmark(emit_prefix)
