"""Shared fixtures for the benchmark suite.

Each ``bench_figure*.py`` regenerates one paper figure/table: the driver in
:mod:`repro.experiments.figures` computes the data, pytest-benchmark times
the run, and the rendered text is written under ``results/`` (these files
are the source of EXPERIMENTS.md's measured numbers).

Scale is controlled by ``REPRO_BENCH_SF`` (default 0.002). The paper ran at
TPC-H sf=5 in C++; the qualitative shapes are scale-invariant, the
wall-clock is not.
"""

from __future__ import annotations

import pathlib

import pytest

from repro.experiments.figures import ExperimentConfig


@pytest.fixture(scope="session")
def results_dir() -> pathlib.Path:
    path = pathlib.Path(__file__).resolve().parent.parent / "results"
    path.mkdir(exist_ok=True)
    return path


@pytest.fixture(scope="session")
def config() -> ExperimentConfig:
    return ExperimentConfig()
