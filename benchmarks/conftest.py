"""Shared fixtures for the benchmark suite.

Each ``bench_figure*.py`` regenerates one paper figure/table: the driver in
:mod:`repro.experiments.figures` computes the data, pytest-benchmark times
the run, and the rendered text is written under ``results/`` (these files
are the source of EXPERIMENTS.md's measured numbers).

Scale is controlled by ``REPRO_BENCH_SF`` (default 0.002). The paper ran at
TPC-H sf=5 in C++; the qualitative shapes are scale-invariant, the
wall-clock is not.
"""

from __future__ import annotations

import json
import os
import pathlib
import platform

import pytest

from repro.experiments.figures import ExperimentConfig


def emit_bench(name, measured, required, json_path, params=None, smoke=False):
    """Write one acceptance-gate artifact in the shared ``BENCH_*.json``
    schema.

    Every gate script emits through this helper so the artifacts stay
    machine-comparable across PRs: the gate's single headline ratio
    (``measured_speedup`` vs. ``required_speedup``), its workload
    parameters and per-arm timings under ``params``, and a host
    fingerprint so numbers from different machines are never naively
    compared. Returns the path written.
    """
    payload = {
        "benchmark": name,
        "measured_speedup": round(float(measured), 2),
        "required_speedup": required,
        "params": params or {},
        "host": {
            "platform": platform.platform(),
            "python": platform.python_version(),
            "cpu_count": os.cpu_count(),
        },
        "smoke": bool(smoke),
    }
    path = pathlib.Path(json_path)
    path.write_text(json.dumps(payload, indent=2) + "\n")
    print(f"wrote {path}")
    return path


@pytest.fixture(scope="session")
def results_dir() -> pathlib.Path:
    path = pathlib.Path(__file__).resolve().parent.parent / "results"
    path.mkdir(exist_ok=True)
    return path


@pytest.fixture(scope="session")
def config() -> ExperimentConfig:
    return ExperimentConfig()
