"""Figure 6 (App. B.2.1) — Figure 1 plus Sample(EO) with its timeout.

Sample(EO) runs under a draw budget (50× the answer count); exceeding it
reports a timeout, mirroring the paper's omitted bars.
"""

from repro.experiments.figures import ExperimentConfig, figure6


def test_figure6(benchmark, config, results_dir):
    # The paper restricts several EO panels to k ≤ 30% before timing out.
    cfg = ExperimentConfig(
        scale_factor=config.scale_factor, seed=config.seed, percentages=(1, 5, 10, 30)
    )
    result = benchmark.pedantic(figure6, args=(cfg,), rounds=1, iterations=1)
    text = result.render()
    (results_dir / "figure6.txt").write_text(text)
    print(text)
