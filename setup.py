"""Legacy setup shim (the environment's setuptools lacks bdist_wheel)."""

from setuptools import setup

setup()
