"""Legacy setup shim (the environment's setuptools lacks bdist_wheel).

The core package is dependency-free on purpose — the paper's algorithms
run on the pure-python tuple stores everywhere. The ``fast`` extra pulls
in numpy for the columnar flat-store backend (``store="flat"`` /
``REPRO_STORE=flat``), which the package degrades away from gracefully
when numpy is absent. The ``server`` extra pulls in uvicorn (and
starlette for client-side niceties); the serving tier itself
(``repro.server``) is a framework-free ASGI app with a stdlib HTTP
bridge, so ``repro serve`` works without the extra too.
"""

from setuptools import find_packages, setup

setup(
    name="repro",
    version="0.8.0",
    description=(
        "Random access and random-order enumeration for free-connex CQs "
        "and mc-UCQs (Carmeli et al., PODS 2020)"
    ),
    package_dir={"": "src"},
    packages=find_packages(where="src"),
    python_requires=">=3.9",
    extras_require={
        "fast": ["numpy"],
        "server": ["uvicorn", "starlette"],
    },
)
