"""Legacy setup shim (the environment's setuptools lacks bdist_wheel).

The core package is dependency-free on purpose — the paper's algorithms
run on the pure-python tuple stores everywhere. The ``fast`` extra pulls
in numpy for the columnar flat-store backend (``store="flat"`` /
``REPRO_STORE=flat``), which the package degrades away from gracefully
when numpy is absent.
"""

from setuptools import find_packages, setup

setup(
    name="repro",
    version="0.7.0",
    description=(
        "Random access and random-order enumeration for free-connex CQs "
        "and mc-UCQs (Carmeli et al., PODS 2020)"
    ),
    package_dir={"": "src"},
    packages=find_packages(where="src"),
    python_requires=">=3.9",
    extras_require={
        "fast": ["numpy"],
    },
)
